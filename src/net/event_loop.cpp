#include "net/event_loop.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <any>
#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "ariadne/messages.hpp"
#include "ariadne/wire_bridge.hpp"
#include "obs/metric_names.hpp"
#include "support/errors.hpp"

namespace sariadne::net {

namespace {

constexpr std::size_t kFramePrefixBytes = 4;
constexpr std::size_t kReadChunkBytes = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
    throw Error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw_errno("fcntl(O_NONBLOCK)");
    }
}

std::uint32_t read_le32(const std::uint8_t* p) noexcept {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

void write_le32(std::uint8_t* p, std::uint32_t value) noexcept {
    p[0] = static_cast<std::uint8_t>(value);
    p[1] = static_cast<std::uint8_t>(value >> 8);
    p[2] = static_cast<std::uint8_t>(value >> 16);
    p[3] = static_cast<std::uint8_t>(value >> 24);
}

}  // namespace

EventLoopTransport::EventLoopTransport(EventLoopConfig config)
    : config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()),
      conns_(config_.max_connections + 1) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
        ::close(listen_fd_);
        throw Error("invalid bind address: " + config_.bind_address);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        errno = saved;
        throw_errno("bind " + config_.bind_address + ":" +
                    std::to_string(config_.port));
    }
    if (::listen(listen_fd_, 128) < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        errno = saved;
        throw_errno("listen");
    }
    set_nonblocking(listen_fd_);

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
        local_port_ = ntohs(bound.sin_port);
    }

    if (::pipe(wake_pipe_) < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        errno = saved;
        throw_errno("pipe");
    }
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
}

EventLoopTransport::~EventLoopTransport() {
    for (NodeId slot = 1; slot < conns_.size(); ++slot) {
        if (conns_[slot].live()) ::close(conns_[slot].fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void EventLoopTransport::set_delivery_handler(DeliveryHandler handler) {
    handler_ = std::move(handler);
}

void EventLoopTransport::set_metrics(obs::MetricsRegistry* registry) {
    metrics_ = Metrics{};
    if (registry == nullptr) return;
    metrics_.registry = registry;
    metrics_.connections_accepted =
        &registry->counter(obs::names::kTransportConnectionsAccepted);
    metrics_.connections_closed =
        &registry->counter(obs::names::kTransportConnectionsClosed);
    metrics_.connections_rejected =
        &registry->counter(obs::names::kTransportConnectionsRejected);
    metrics_.connections_active =
        &registry->gauge(obs::names::kTransportConnectionsActive);
    metrics_.frames_sent = &registry->counter(obs::names::kTransportFramesSent);
    metrics_.frames_received =
        &registry->counter(obs::names::kTransportFramesReceived);
    metrics_.bytes_sent = &registry->counter(obs::names::kTransportBytesSent);
    metrics_.bytes_received =
        &registry->counter(obs::names::kTransportBytesReceived);
    metrics_.decode_errors =
        &registry->counter(obs::names::kTransportDecodeErrors);
    metrics_.oversized_frames =
        &registry->counter(obs::names::kTransportOversizedFrames);
    metrics_.backpressure_drops =
        &registry->counter(obs::names::kTransportBackpressureDrops);
    metrics_.write_queue_bytes =
        &registry->gauge(obs::names::kTransportWriteQueueBytes);
}

SimTime EventLoopTransport::now() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void EventLoopTransport::schedule(SimTime delay_ms,
                                  std::function<void()> action) {
    timers_.push(Timer{now() + (delay_ms > 0 ? delay_ms : 0),
                       next_timer_seq_++, std::move(action)});
}

void EventLoopTransport::post(std::function<void()> fn) {
    {
        std::lock_guard<support::RankedMutex> guard(post_mutex_);
        posted_.push_back(std::move(fn));
    }
    // Wake the reactor; a full pipe already guarantees a pending wake.
    const char byte = 'p';
    [[maybe_unused]] const auto ignored =
        ::write(wake_pipe_[1], &byte, 1);
}

void EventLoopTransport::request_stop() {
    const char byte = 'q';
    [[maybe_unused]] const auto ignored =
        ::write(wake_pipe_[1], &byte, 1);
}

bool EventLoopTransport::is_up(NodeId node) const {
    if (node == 0) return true;
    return node < conns_.size() && conns_[node].live();
}

std::vector<int> EventLoopTransport::hop_distances(NodeId from) const {
    std::vector<int> dist(node_count(), -1);
    if (from >= node_count()) return dist;
    dist[from] = 0;
    if (from == 0) {
        for (NodeId slot = 1; slot < conns_.size(); ++slot) {
            if (conns_[slot].live()) dist[slot] = 1;
        }
    } else if (conns_[from].live()) {
        dist[0] = 1;
    }
    return dist;
}

std::size_t EventLoopTransport::degree(NodeId node) const {
    if (node == 0) return live_count_;
    return is_up(node) ? 1 : 0;
}

bool EventLoopTransport::idle() const {
    if (!timers_.empty() || !local_.empty()) return false;
    for (const Connection& conn : conns_) {
        if (conn.live() && !conn.write_queue.empty()) return false;
    }
    std::lock_guard<support::RankedMutex> guard(
        const_cast<support::RankedMutex&>(post_mutex_));
    return posted_.empty();
}

// --- send path -------------------------------------------------------------

void EventLoopTransport::enqueue_frame(NodeId to, const Message& msg) {
    Connection& conn = conns_[to];
    auto encoded = ariadne::wirebridge::encode_message(msg);
    if (!encoded) {
        // A payload/type mismatch is a programming error in the caller;
        // surface it as a decode error rather than killing the daemon.
        if (metrics_.decode_errors) metrics_.decode_errors->inc();
        return;
    }
    const std::vector<std::uint8_t>& body = encoded.value();
    if (body.size() > config_.max_frame_bytes) {
        if (metrics_.oversized_frames) metrics_.oversized_frames->inc();
        return;
    }
    if (conn.queued_bytes + body.size() > config_.write_queue_limit_bytes) {
        if (metrics_.backpressure_drops) metrics_.backpressure_drops->inc();
        return;
    }
    std::vector<std::uint8_t> frame(kFramePrefixBytes + body.size());
    write_le32(frame.data(), static_cast<std::uint32_t>(body.size()));
    std::memcpy(frame.data() + kFramePrefixBytes, body.data(), body.size());
    conn.queued_bytes += frame.size();
    if (metrics_.write_queue_bytes) {
        metrics_.write_queue_bytes->add(static_cast<std::int64_t>(frame.size()));
    }
    conn.write_queue.push_back(std::move(frame));
    if (metrics_.frames_sent) metrics_.frames_sent->inc();
    stats_.bytes_transmitted += kFramePrefixBytes + body.size();
    stats_.link_transmissions += 1;
}

void EventLoopTransport::unicast(NodeId from, NodeId to, Message msg) {
    stats_.unicasts += 1;
    msg.source = from;
    msg.wire_seq = ++next_wire_seq_;
    if (to == 0) {
        // Loopback to the hosted node: queued, delivered on the next
        // reactor iteration (never re-entrantly inside the sender).
        local_.push_back(std::move(msg));
        return;
    }
    if (!is_up(to)) {
        stats_.dropped_unreachable += 1;
        return;
    }
    enqueue_frame(to, msg);
}

void EventLoopTransport::broadcast(NodeId from, std::uint32_t ttl_hops,
                                   Message msg) {
    stats_.broadcasts += 1;
    if (ttl_hops == 0) return;
    msg.source = from;
    msg.wire_seq = ++next_wire_seq_;
    if (from != 0) {
        // A remote peer's broadcast reaches only the hosted node.
        local_.push_back(std::move(msg));
        return;
    }
    for (NodeId slot = 1; slot < conns_.size(); ++slot) {
        if (conns_[slot].live()) enqueue_frame(slot, msg);
    }
}

void EventLoopTransport::flush_writes(NodeId slot) {
    Connection& conn = conns_[slot];
    while (!conn.write_queue.empty()) {
        const std::vector<std::uint8_t>& front = conn.write_queue.front();
        const std::size_t remaining = front.size() - conn.write_off;
        const ssize_t sent =
            ::send(conn.fd, front.data() + conn.write_off, remaining,
                   MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            close_connection(slot);
            return;
        }
        if (metrics_.bytes_sent) {
            metrics_.bytes_sent->inc(static_cast<std::uint64_t>(sent));
        }
        conn.queued_bytes -= static_cast<std::size_t>(sent);
        if (metrics_.write_queue_bytes) {
            metrics_.write_queue_bytes->sub(static_cast<std::int64_t>(sent));
        }
        conn.write_off += static_cast<std::size_t>(sent);
        if (conn.write_off < front.size()) return;  // short write
        conn.write_off = 0;
        conn.write_queue.pop_front();
    }
}

// --- receive path ----------------------------------------------------------

void EventLoopTransport::deliver_inbound(NodeId from, Message msg) {
    msg.source = from;
    msg.wire_seq = ++next_wire_seq_;
    // Trust boundary: the connection's identity overrides whatever node id
    // the peer wrote into routable payload fields.
    if (msg.type == "req") {
        if (auto* request = std::any_cast<ariadne::msg::Request>(&msg.payload)) {
            request->client = from;
        }
    } else if (msg.type == "fwd") {
        if (auto* fwd = std::any_cast<ariadne::msg::Forward>(&msg.payload)) {
            fwd->origin = from;
        }
    }
    stats_.deliveries += 1;
    stats_.per_type[msg.type] += 1;
    if (metrics_.frames_received) metrics_.frames_received->inc();
    if (handler_) handler_(0, msg);
}

void EventLoopTransport::read_ready(NodeId slot) {
    Connection& conn = conns_[slot];
    while (conn.live()) {
        const std::size_t old_size = conn.read_buf.size();
        conn.read_buf.resize(old_size + kReadChunkBytes);
        const ssize_t got =
            ::recv(conn.fd, conn.read_buf.data() + old_size, kReadChunkBytes, 0);
        if (got < 0) {
            conn.read_buf.resize(old_size);
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_connection(slot);
            return;
        }
        if (got == 0) {  // orderly peer close
            conn.read_buf.resize(old_size);
            close_connection(slot);
            return;
        }
        conn.read_buf.resize(old_size + static_cast<std::size_t>(got));
        if (metrics_.bytes_received) {
            metrics_.bytes_received->inc(static_cast<std::uint64_t>(got));
        }
        stats_.bytes_transmitted += static_cast<std::uint64_t>(got);

        // Extract every complete frame in the buffer.
        while (conn.read_buf.size() - conn.read_pos >= kFramePrefixBytes) {
            const std::uint32_t frame_len =
                read_le32(conn.read_buf.data() + conn.read_pos);
            if (frame_len > config_.max_frame_bytes) {
                if (metrics_.oversized_frames) metrics_.oversized_frames->inc();
                close_connection(slot);
                return;
            }
            if (conn.read_buf.size() - conn.read_pos <
                kFramePrefixBytes + frame_len) {
                break;  // partial frame; wait for more bytes
            }
            const std::span<const std::uint8_t> datagram(
                conn.read_buf.data() + conn.read_pos + kFramePrefixBytes,
                frame_len);
            conn.read_pos += kFramePrefixBytes + frame_len;
            auto decoded = ariadne::wirebridge::try_decode_message(datagram);
            if (!decoded) {
                if (metrics_.decode_errors) metrics_.decode_errors->inc();
                close_connection(slot);
                return;
            }
            deliver_inbound(slot, std::move(decoded).value());
            if (!conn.live()) return;  // handler may have closed us
        }
        // Compact the consumed prefix once per read burst.
        if (conn.read_pos > 0) {
            conn.read_buf.erase(conn.read_buf.begin(),
                                conn.read_buf.begin() +
                                    static_cast<std::ptrdiff_t>(conn.read_pos));
            conn.read_pos = 0;
        }
        if (static_cast<std::size_t>(got) < kReadChunkBytes) break;
    }
}

void EventLoopTransport::accept_ready() {
    while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            return;  // transient accept failure; poll again
        }
        NodeId slot = 0;
        for (NodeId candidate = 1; candidate < conns_.size(); ++candidate) {
            if (!conns_[candidate].live()) {
                slot = candidate;
                break;
            }
        }
        if (slot == 0) {
            if (metrics_.connections_rejected) {
                metrics_.connections_rejected->inc();
            }
            ::close(fd);
            continue;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Connection& conn = conns_[slot];
        conn.fd = fd;
        conn.read_buf.clear();
        conn.read_pos = 0;
        conn.write_queue.clear();
        conn.write_off = 0;
        conn.queued_bytes = 0;
        ++live_count_;
        if (metrics_.connections_accepted) metrics_.connections_accepted->inc();
        if (metrics_.connections_active) {
            metrics_.connections_active->set(
                static_cast<std::int64_t>(live_count_));
        }
    }
}

void EventLoopTransport::close_connection(NodeId slot) {
    Connection& conn = conns_[slot];
    if (!conn.live()) return;
    ::close(conn.fd);
    conn.fd = -1;
    if (metrics_.write_queue_bytes && conn.queued_bytes > 0) {
        metrics_.write_queue_bytes->sub(
            static_cast<std::int64_t>(conn.queued_bytes));
    }
    conn.read_buf.clear();
    conn.read_pos = 0;
    conn.write_queue.clear();
    conn.write_off = 0;
    conn.queued_bytes = 0;
    --live_count_;
    if (metrics_.connections_closed) metrics_.connections_closed->inc();
    if (metrics_.connections_active) {
        metrics_.connections_active->set(
            static_cast<std::int64_t>(live_count_));
    }
}

// --- reactor ---------------------------------------------------------------

void EventLoopTransport::run_expired_timers() {
    const SimTime current = now();
    while (!timers_.empty() && timers_.top().due <= current) {
        // priority_queue::top() is const; the action is moved out via the
        // const_cast idiom the simulator also uses.
        auto action = std::move(const_cast<Timer&>(timers_.top()).action);
        timers_.pop();
        action();
    }
}

void EventLoopTransport::drain_posted() {
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<support::RankedMutex> guard(post_mutex_);
        batch.swap(posted_);
    }
    for (auto& fn : batch) fn();
}

void EventLoopTransport::drain_local() {
    while (!local_.empty()) {
        std::vector<Message> batch;
        batch.swap(local_);
        for (Message& msg : batch) {
            stats_.deliveries += 1;
            stats_.per_type[msg.type] += 1;
            if (handler_) handler_(0, msg);
        }
    }
}

SimTime EventLoopTransport::next_timer_due() const {
    return timers_.empty() ? -1 : timers_.top().due;
}

void EventLoopTransport::step(SimTime max_wait_ms) {
    run_expired_timers();
    drain_posted();
    drain_local();

    SimTime wait_ms = max_wait_ms;
    const SimTime due = next_timer_due();
    if (due >= 0) {
        const SimTime until_timer = due - now();
        if (until_timer < wait_ms) wait_ms = until_timer;
    }
    if (wait_ms < 0) wait_ms = 0;

    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    std::vector<NodeId> fd_slots;
    fd_slots.reserve(conns_.size());
    for (NodeId slot = 1; slot < conns_.size(); ++slot) {
        Connection& conn = conns_[slot];
        if (!conn.live()) continue;
        short events = POLLIN;
        if (!conn.write_queue.empty()) events |= POLLOUT;
        fds.push_back(pollfd{conn.fd, events, 0});
        fd_slots.push_back(slot);
    }

    timespec ts{};
    ts.tv_sec = static_cast<time_t>(wait_ms / 1000.0);
    ts.tv_nsec = static_cast<long>((wait_ms - 1000.0 * ts.tv_sec) * 1e6);
    const int ready = ::ppoll(fds.data(), fds.size(), &ts, nullptr);
    if (ready < 0) {
        if (errno == EINTR) return;
        throw_errno("ppoll");
    }

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
        char buf[256];
        ssize_t got;
        while ((got = ::read(wake_pipe_[0], buf, sizeof(buf))) > 0) {
            for (ssize_t i = 0; i < got; ++i) {
                if (buf[i] == 'q') stop_requested_ = true;
            }
        }
    }
    ++index;
    if (listen_fd_ >= 0) {
        if (fds[index].revents & POLLIN) accept_ready();
        ++index;
    }
    for (std::size_t i = 0; i < fd_slots.size(); ++i, ++index) {
        const NodeId slot = fd_slots[i];
        const short revents = fds[index].revents;
        if (revents == 0 || !conns_[slot].live()) continue;
        if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
            // Drain what the kernel buffered before honouring the hangup,
            // so a peer's final frames are not lost.
            if (revents & POLLIN) read_ready(slot);
            if (conns_[slot].live()) close_connection(slot);
            continue;
        }
        if (revents & POLLIN) read_ready(slot);
        if (conns_[slot].live() && (revents & POLLOUT)) flush_writes(slot);
    }

    run_expired_timers();
    drain_local();

    // Opportunistic flush: frames enqueued while handling this iteration's
    // deliveries/timers go out now instead of waiting for the next POLLOUT.
    for (NodeId slot = 1; slot < conns_.size(); ++slot) {
        if (conns_[slot].live() && !conns_[slot].write_queue.empty()) {
            flush_writes(slot);
        }
    }
}

void EventLoopTransport::run_for(SimTime duration_ms) {
    const SimTime deadline = now() + duration_ms;
    while (true) {
        const SimTime remaining = deadline - now();
        if (remaining <= 0) break;
        step(remaining);
    }
    run_expired_timers();
    drain_local();
}

void EventLoopTransport::run_until_stopped(double drain_grace_ms) {
    while (!stop_requested_) {
        step(100);
    }
    // Drain: stop accepting, let queued writes flush within the grace
    // period, then close everything.
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    const SimTime drain_deadline = now() + drain_grace_ms;
    while (now() < drain_deadline) {
        bool pending = false;
        for (const Connection& conn : conns_) {
            if (conn.live() && !conn.write_queue.empty()) pending = true;
        }
        if (!pending) break;
        step(drain_deadline - now());
    }
    for (NodeId slot = 1; slot < conns_.size(); ++slot) {
        if (conns_[slot].live()) close_connection(slot);
    }
}

}  // namespace sariadne::net
