#include "net/mobility.hpp"

#include <cmath>

namespace sariadne::net {

RandomWaypointMobility::RandomWaypointMobility(Simulator& sim,
                                               MobilityConfig config)
    : sim_(&sim), config_(config), rng_(config.seed) {
    motion_.resize(sim.topology().node_count());
    for (auto& m : motion_) {
        m.waypoint = Position{rng_.uniform(), rng_.uniform()};
    }
}

void RandomWaypointMobility::start() {
    sim_->schedule(config_.step_ms, [this] { step(); });
}

void RandomWaypointMobility::step() {
    ++steps_;
    Topology& topo = sim_->topology();
    const double stride = config_.speed * config_.step_ms / 1000.0;
    bool moved = false;

    for (NodeId node = 0; node < topo.node_count(); ++node) {
        if (topo.is_infrastructure(node) || !topo.is_up(node)) continue;
        NodeMotion& m = motion_[node];
        if (sim_->now() < m.pause_until_ms) continue;

        const Position at = topo.position(node);
        const double dx = m.waypoint.x - at.x;
        const double dy = m.waypoint.y - at.y;
        const double remaining = std::sqrt(dx * dx + dy * dy);
        if (remaining <= stride) {
            topo.set_position(node, m.waypoint);
            travelled_ += remaining;
            m.waypoint = Position{rng_.uniform(), rng_.uniform()};
            m.pause_until_ms = sim_->now() + config_.pause_ms;
        } else {
            topo.set_position(node, Position{at.x + dx / remaining * stride,
                                             at.y + dy / remaining * stride});
            travelled_ += stride;
        }
        moved = true;
    }

    if (moved) topo.rebuild_radio_links(config_.radio_range);
    sim_->schedule(config_.step_ms, [this] { step(); });
}

}  // namespace sariadne::net
