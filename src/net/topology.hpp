// Network topology for the discrete-event simulator: nodes with planar
// positions and bidirectional radio links. Two standard constructions are
// provided — a connected random geometric graph (the usual MANET model:
// nodes scattered in the unit square, linked when within radio range) and
// a grid (deterministic worst-case diameter). Nodes can go down and come
// back, modelling the churn that drives directory re-election.
#pragma once

#include <cstdint>
#include <vector>

#include "ariadne/transport_types.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace sariadne::net {

struct Position {
    double x = 0;
    double y = 0;
};

class Topology {
public:
    /// Connected random geometric graph: `count` nodes uniform in the unit
    /// square, linked when within `radio_range`. Re-samples (bounded
    /// retries) until the graph is connected; grows the range slightly if
    /// connectivity cannot be reached at the requested one.
    static Topology random_geometric(std::size_t count, double radio_range,
                                     Rng& rng);

    /// width x height grid with unit spacing scaled into the unit square;
    /// 4-neighbour links.
    static Topology grid(std::size_t width, std::size_t height);

    /// Hybrid ad-hoc + infrastructure network (the paper's setting):
    /// `wireless_count` mobile nodes as a random geometric graph, plus
    /// `ap_count` mains-powered access points on a regular grid, wired to
    /// each other in a full mesh with `wired_weight`-cheap links (< 1 radio
    /// hop each) and reachable over radio from nearby mobiles. Access
    /// points occupy the first `ap_count` node ids and are flagged
    /// infrastructure.
    static Topology hybrid(std::size_t wireless_count, std::size_t ap_count,
                           double radio_range, Rng& rng,
                           double wired_weight = 0.2);

    /// True for mains-powered infrastructure nodes (access points).
    bool is_infrastructure(NodeId node) const {
        SARIADNE_EXPECTS(node < infrastructure_.size());
        return infrastructure_[node] != 0;
    }

    void set_infrastructure(NodeId node, bool value) {
        SARIADNE_EXPECTS(node < infrastructure_.size());
        infrastructure_[node] = value ? 1 : 0;
    }

    /// Latency-weighted distance between up-nodes (radio hop = 1.0, wired
    /// link = its weight); -1 when unreachable. This is what the
    /// simulator charges for unicasts.
    double path_cost(NodeId from, NodeId to) const;

    /// Weighted costs from `from` to every node (-1 when unreachable).
    std::vector<double> path_costs(NodeId from) const;

    std::size_t node_count() const noexcept { return adjacency_.size(); }

    const std::vector<NodeId>& neighbors(NodeId node) const {
        SARIADNE_EXPECTS(node < adjacency_.size());
        return adjacency_[node];
    }

    Position position(NodeId node) const {
        SARIADNE_EXPECTS(node < positions_.size());
        return positions_[node];
    }

    bool is_up(NodeId node) const {
        SARIADNE_EXPECTS(node < up_.size());
        return up_[node];
    }

    void set_up(NodeId node, bool up) {
        SARIADNE_EXPECTS(node < up_.size());
        up_[node] = up;
    }

    /// Hop distance between two up-nodes through up-nodes only;
    /// -1 when unreachable.
    int hop_distance(NodeId from, NodeId to) const;

    /// Hop distances from `from` to every node (-1 when unreachable).
    std::vector<int> hop_distances(NodeId from) const;

    /// True if all up-nodes form one connected component.
    bool connected() const;

    void add_link(NodeId a, NodeId b, double weight = 1.0);

    /// Moves a node (mobility models drive this through the simulator).
    void set_position(NodeId node, Position pos) {
        SARIADNE_EXPECTS(node < positions_.size());
        positions_[node] = pos;
    }

    /// Drops all radio links and re-derives them from current positions
    /// (nodes within `radio_range` link). Wired infrastructure links
    /// (weight != 1.0 between infrastructure nodes) survive — mobility
    /// never rewires the mains-powered backbone.
    void rebuild_radio_links(double radio_range);

private:
    std::vector<Position> positions_;
    std::vector<std::vector<NodeId>> adjacency_;
    std::vector<std::vector<double>> weights_;  // parallel to adjacency_
    std::vector<char> up_;
    std::vector<char> infrastructure_;
};

}  // namespace sariadne::net
