// EventLoopTransport — the socket implementation of the Transport seam: a
// single-threaded poll(2) reactor moving the protocol's messages as
// wire-codec frames (ariadne/wire_bridge.*) over nonblocking TCP.
//
// Node model: a star. Node 0 is the hosted node (the daemon's directory);
// connection slots 1..max_connections are remote peers, assigned a NodeId
// on accept and released on close. Every inbound frame is delivered to
// node 0; unicast(0, k, ...) frames onto connection k; broadcast reaches
// every live connection (any ttl >= 1 — one hop covers the star).
//
// Framing: u32 little-endian length prefix + one wire datagram. Reads go
// through a per-connection bounded buffer into wire-codec decoding; a
// frame longer than max_frame_bytes or one that fails to decode closes
// the connection (counted under transport.oversized_frames /
// transport.decode_errors — a peer that corrupts its framing once can
// never resynchronize, so dropping the connection is the safe move).
//
// Ingress trust boundary: a client-supplied `req.client` / `fwd.origin`
// field is overwritten with the connection's NodeId, so a peer cannot
// direct another peer's responses (or spoof a third node) regardless of
// what it puts on the wire.
//
// Backpressure: writes are queued per connection and flushed as the
// socket drains; once a connection's queue exceeds
// write_queue_limit_bytes, new frames for it are shed (counted under
// transport.backpressure_drops) instead of growing the queue — the
// reactor never blocks on a stalled peer.
//
// Threading: run_for()/run_until_stopped() drive everything — accepts,
// reads, decode, delivery, timers — on the calling thread, satisfying the
// Transport contract's single-threaded reactor model. The only
// cross-thread entry points are post() (mutex-guarded queue, rank
// kTransportQueue, woken through a self-pipe), request_stop(), and the
// async-signal-safe stop_fd() (a signal handler writes one byte to it —
// the SIGTERM drain path of sariadne_daemon).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "ariadne/transport.hpp"
#include "ariadne/transport_types.hpp"
#include "obs/metrics.hpp"
#include "support/lock_rank.hpp"

namespace sariadne::net {

struct EventLoopConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via local_port()
    /// Connection slots (NodeIds 1..max_connections). Accepts beyond this
    /// are closed immediately (transport.connections_rejected).
    std::size_t max_connections = 64;
    /// Frames longer than this close the connection before any allocation
    /// sized by the hostile length.
    std::size_t max_frame_bytes = 1u << 20;
    /// Per-connection write-queue high watermark (backpressure shed point).
    std::size_t write_queue_limit_bytes = 4u << 20;
};

class EventLoopTransport final : public ariadne::Transport {
public:
    /// Binds and listens immediately; throws support/errors.hpp Error on
    /// socket/bind/listen failure.
    explicit EventLoopTransport(EventLoopConfig config);
    ~EventLoopTransport() override;

    EventLoopTransport(const EventLoopTransport&) = delete;
    EventLoopTransport& operator=(const EventLoopTransport&) = delete;

    /// The bound TCP port (resolves an ephemeral-port request).
    std::uint16_t local_port() const noexcept { return local_port_; }

    /// Thread-safe: enqueues `fn` onto the reactor thread and wakes it.
    void post(std::function<void()> fn);

    /// Thread-safe: makes run_until_stopped() return after its drain.
    void request_stop();

    /// File descriptor a signal handler may write one byte to (write(2)
    /// is async-signal-safe) to trigger request_stop() semantics.
    int stop_fd() const noexcept { return wake_pipe_[1]; }

    bool stop_requested() const noexcept { return stop_requested_; }

    /// Runs until request_stop() (or a byte on stop_fd()), then drains:
    /// stops accepting, flushes pending write queues for at most
    /// `drain_grace_ms`, closes every connection and returns.
    void run_until_stopped(double drain_grace_ms = 500);

    /// Live connection count (drain/interest introspection).
    std::size_t live_connections() const noexcept { return live_count_; }

    // --- Transport -------------------------------------------------------

    void set_delivery_handler(DeliveryHandler handler) override;
    void set_metrics(obs::MetricsRegistry* registry) override;
    void unicast(NodeId from, NodeId to, Message msg) override;
    void broadcast(NodeId from, std::uint32_t ttl_hops, Message msg) override;
    SimTime now() const override;
    void schedule(SimTime delay_ms, std::function<void()> action) override;
    void run_for(SimTime duration_ms) override;
    bool idle() const override;
    std::size_t node_count() const override {
        return config_.max_connections + 1;
    }
    bool is_up(NodeId node) const override;
    std::vector<int> hop_distances(NodeId from) const override;
    bool is_infrastructure(NodeId node) const override {
        // The hosted daemon node is mains-powered infrastructure; remote
        // peers report as plain mobile nodes.
        return node == 0;
    }
    std::size_t degree(NodeId node) const override;
    const TrafficStats& stats() const override { return stats_; }

private:
    struct Connection {
        int fd = -1;
        std::vector<std::uint8_t> read_buf;
        std::size_t read_pos = 0;  ///< consumed prefix of read_buf
        std::deque<std::vector<std::uint8_t>> write_queue;
        std::size_t write_off = 0;  ///< sent prefix of write_queue.front()
        std::size_t queued_bytes = 0;

        bool live() const noexcept { return fd >= 0; }
    };

    struct Timer {
        SimTime due;
        std::uint64_t seq;
        std::function<void()> action;

        bool operator>(const Timer& other) const noexcept {
            return due != other.due ? due > other.due : seq > other.seq;
        }
    };

    /// Cached registry handles (all null when detached).
    struct Metrics {
        obs::MetricsRegistry* registry = nullptr;
        obs::Counter* connections_accepted = nullptr;
        obs::Counter* connections_closed = nullptr;
        obs::Counter* connections_rejected = nullptr;
        obs::Gauge* connections_active = nullptr;
        obs::Counter* frames_sent = nullptr;
        obs::Counter* frames_received = nullptr;
        obs::Counter* bytes_sent = nullptr;
        obs::Counter* bytes_received = nullptr;
        obs::Counter* decode_errors = nullptr;
        obs::Counter* oversized_frames = nullptr;
        obs::Counter* backpressure_drops = nullptr;
        obs::Gauge* write_queue_bytes = nullptr;
    };

    /// One reactor iteration: expire timers, drain posts/local deliveries,
    /// poll with a timeout bounded by `max_wait_ms`, handle ready fds.
    void step(SimTime max_wait_ms);
    void run_expired_timers();
    void drain_posted();
    void drain_local();
    void accept_ready();
    void read_ready(NodeId slot);
    void flush_writes(NodeId slot);
    void close_connection(NodeId slot);
    void enqueue_frame(NodeId to, const Message& msg);
    void deliver_inbound(NodeId from, Message msg);
    SimTime next_timer_due() const;

    EventLoopConfig config_;
    int listen_fd_ = -1;
    std::uint16_t local_port_ = 0;
    int wake_pipe_[2] = {-1, -1};
    std::chrono::steady_clock::time_point epoch_;
    std::vector<Connection> conns_;  ///< index = NodeId (slot 0 unused)
    std::size_t live_count_ = 0;
    DeliveryHandler handler_;
    std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
    std::uint64_t next_timer_seq_ = 0;
    std::uint64_t next_wire_seq_ = 0;
    std::vector<Message> local_;  ///< loopback deliveries to node 0
    bool stop_requested_ = false;
    TrafficStats stats_;
    Metrics metrics_;

    support::RankedMutex post_mutex_{support::LockRank::kTransportQueue};
    std::vector<std::function<void()>> posted_;
};

}  // namespace sariadne::net
