#include "net/sim_transport.hpp"

namespace sariadne::ariadne {

// The topology convenience constructor lives here, not in protocol.cpp, so
// the protocol translation unit never names a concrete transport — the
// redesign's "protocol compiles against Transport only" property holds at
// the TU level, not just in the header.
DiscoveryNetwork::DiscoveryNetwork(net::Topology topology,
                                   ProtocolConfig config,
                                   encoding::KnowledgeBase& kb,
                                   obs::MetricsRegistry* metrics)
    : DiscoveryNetwork(std::make_unique<SimTransport>(std::move(topology)),
                       config, kb, metrics) {}

}  // namespace sariadne::ariadne
