#include "net/simulator.hpp"

#include "obs/metric_names.hpp"

namespace sariadne::net {

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
        metrics_ = Metrics{};
        return;
    }
    metrics_.registry = registry;
    metrics_.unicasts = &registry->counter(obs::names::kSimUnicasts);
    metrics_.broadcasts = &registry->counter(obs::names::kSimBroadcasts);
    metrics_.deliveries = &registry->counter(obs::names::kSimDeliveries);
    metrics_.link_transmissions = &registry->counter(obs::names::kSimLinkTransmissions);
    metrics_.bytes_transmitted = &registry->counter(obs::names::kSimBytesTransmitted);
    metrics_.dropped_unreachable =
        &registry->counter(obs::names::kSimDroppedUnreachable);
    metrics_.faults_dropped = &registry->counter(obs::names::kSimFaultsDropped);
    metrics_.faults_duplicated = &registry->counter(obs::names::kSimFaultsDuplicated);
    metrics_.faults_crashes = &registry->counter(obs::names::kSimFaultsCrashes);
    metrics_.faults_recoveries = &registry->counter(obs::names::kSimFaultsRecoveries);
    metrics_.pending_events = &registry->gauge(obs::names::kSimPendingEvents);
    metrics_.now_ms = &registry->gauge(obs::names::kSimNowMs);
}

void Simulator::set_faults(FaultPlan plan) {
    faults_ = std::move(plan);
    fault_rng_ = Rng(faults_.seed);
    for (const CrashWindow& window : faults_.crashes) {
        SARIADNE_EXPECTS(window.node < topology_.node_count());
        SARIADNE_EXPECTS(window.down_at >= 0);
        const NodeId node = window.node;
        schedule(window.down_at, [this, node] {
            topology_.set_up(node, false);
            ++stats_.faults_crashes;
            if (metrics_.faults_crashes != nullptr) {
                metrics_.faults_crashes->inc();
            }
        });
        if (window.up_at > window.down_at) {
            schedule(window.up_at, [this, node] {
                topology_.set_up(node, true);
                ++stats_.faults_recoveries;
                if (metrics_.faults_recoveries != nullptr) {
                    metrics_.faults_recoveries->inc();
                }
            });
        }
    }
}

void Simulator::schedule(SimTime delay_ms, std::function<void()> action) {
    SARIADNE_EXPECTS(delay_ms >= 0);
    events_.push(Event{now_ + delay_ms, next_seq_++, std::move(action)});
}

void Simulator::deliver(NodeId to, const Message& msg) {
    if (!topology_.is_up(to)) return;  // went down while in flight
    ++stats_.deliveries;
    ++stats_.per_type[msg.type];
    if (metrics_.deliveries != nullptr) {
        metrics_.deliveries->inc();
        // Per-type counters are looked up on demand: the type universe is
        // small and stable, and the lookup cost sits on the (simulated)
        // delivery path, not a real hot path.
        metrics_.registry
            ->counter(obs::names::sim_deliveries_by_type(msg.type))
            .inc();
    }
    if (apps_[to] != nullptr) apps_[to]->on_message(*this, to, msg);
}

void Simulator::schedule_delivery(NodeId from, NodeId to, SimTime delay_ms,
                                  Message msg) {
    if (!faults_.enabled()) {
        schedule(delay_ms, [this, to, m = std::move(msg)] { deliver(to, m); });
        return;
    }
    if (faults_.drop != nullptr && faults_.drop(from, to, msg)) {
        ++stats_.faults_dropped;
        if (metrics_.faults_dropped != nullptr) metrics_.faults_dropped->inc();
        return;
    }
    // The RNG draw order per delivery is fixed (loss, jitter, dup, dup
    // jitter) so the fault sequence replays exactly for a given seed.
    if (faults_.loss_probability > 0 &&
        fault_rng_.chance(faults_.loss_probability)) {
        ++stats_.faults_dropped;
        if (metrics_.faults_dropped != nullptr) metrics_.faults_dropped->inc();
        return;
    }
    if (faults_.latency_jitter_ms > 0) {
        delay_ms += fault_rng_.uniform() * faults_.latency_jitter_ms;
    }
    if (faults_.duplication_probability > 0 &&
        fault_rng_.chance(faults_.duplication_probability)) {
        ++stats_.faults_duplicated;
        if (metrics_.faults_duplicated != nullptr) {
            metrics_.faults_duplicated->inc();
        }
        // The echoed frame trails the original; it carries the same
        // wire_seq, so deduplicating receivers can recognize it.
        const double echo_delay =
            delay_ms + 0.1 +
            (faults_.latency_jitter_ms > 0
                 ? fault_rng_.uniform() * faults_.latency_jitter_ms
                 : 0.0);
        schedule(echo_delay, [this, to, m = msg] { deliver(to, m); });
    }
    schedule(delay_ms, [this, to, m = std::move(msg)] { deliver(to, m); });
}

void Simulator::unicast(NodeId from, NodeId to, Message msg) {
    SARIADNE_EXPECTS(from < topology_.node_count());
    SARIADNE_EXPECTS(to < topology_.node_count());
    ++stats_.unicasts;
    if (metrics_.unicasts != nullptr) metrics_.unicasts->inc();
    msg.source = from;
    msg.wire_seq = ++next_wire_seq_;
    if (from == to) {
        // Loopback never touches the radio, so the fault model does not
        // apply; deliver directly.
        schedule(0, [this, to, m = std::move(msg)] { deliver(to, m); });
        return;
    }
    const int hops = topology_.hop_distance(from, to);
    if (hops < 0) {
        ++stats_.dropped_unreachable;
        if (metrics_.dropped_unreachable != nullptr) {
            metrics_.dropped_unreachable->inc();
        }
        return;
    }
    // Latency follows the weighted path (wired backbone links are cheaper
    // than radio hops in hybrid topologies); transmission counting stays
    // per physical link.
    const double cost = topology_.path_cost(from, to);
    stats_.link_transmissions += static_cast<std::uint64_t>(hops);
    stats_.bytes_transmitted +=
        static_cast<std::uint64_t>(hops) * msg.size_bytes;
    if (metrics_.link_transmissions != nullptr) {
        metrics_.link_transmissions->inc(static_cast<std::uint64_t>(hops));
        metrics_.bytes_transmitted->inc(static_cast<std::uint64_t>(hops) *
                                        msg.size_bytes);
    }
    schedule_delivery(from, to, cost * per_hop_latency_ms_, std::move(msg));
}

void Simulator::broadcast(NodeId from, std::uint32_t ttl_hops, Message msg) {
    SARIADNE_EXPECTS(from < topology_.node_count());
    ++stats_.broadcasts;
    if (metrics_.broadcasts != nullptr) metrics_.broadcasts->inc();
    msg.source = from;
    msg.wire_seq = ++next_wire_seq_;
    const auto dist = topology_.hop_distances(from);
    for (NodeId node = 0; node < topology_.node_count(); ++node) {
        if (node == from || dist[node] < 0) continue;
        if (static_cast<std::uint32_t>(dist[node]) > ttl_hops) continue;
        // Each covered node hears one radio transmission from its
        // predecessor on the flood tree.
        ++stats_.link_transmissions;
        stats_.bytes_transmitted += msg.size_bytes;
        if (metrics_.link_transmissions != nullptr) {
            metrics_.link_transmissions->inc();
            metrics_.bytes_transmitted->inc(msg.size_bytes);
        }
        schedule_delivery(from, node, dist[node] * per_hop_latency_ms_, msg);
    }
}

void Simulator::drain(SimTime until) {
    while (!events_.empty()) {
        const Event& top = events_.top();
        if (top.time > until) break;
        // Copy out before pop: the action may schedule further events.
        auto action = top.action;
        now_ = top.time;
        events_.pop();
        action();
    }
    if (metrics_.pending_events != nullptr) {
        metrics_.pending_events->set(
            static_cast<std::int64_t>(events_.size()));
        metrics_.now_ms->set(static_cast<std::int64_t>(now_));
    }
}

void Simulator::run() { drain(1e12); }

void Simulator::run(SimTime until) {
    drain(until);
    // The window's virtual time elapses in full even when the tail of it
    // held no events; otherwise back-to-back run() windows would skew
    // every now()-based staleness check by the idle gap.
    if (until > now_) now_ = until;
    if (metrics_.now_ms != nullptr) {
        metrics_.now_ms->set(static_cast<std::int64_t>(now_));
    }
}

std::size_t Simulator::step(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && !events_.empty()) {
        auto action = events_.top().action;
        now_ = events_.top().time;
        events_.pop();
        action();
        ++executed;
    }
    return executed;
}

}  // namespace sariadne::net
