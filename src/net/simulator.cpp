#include "net/simulator.hpp"

namespace sariadne::net {

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
        metrics_ = Metrics{};
        return;
    }
    metrics_.registry = registry;
    metrics_.unicasts = &registry->counter("sim.unicasts");
    metrics_.broadcasts = &registry->counter("sim.broadcasts");
    metrics_.deliveries = &registry->counter("sim.deliveries");
    metrics_.link_transmissions = &registry->counter("sim.link_transmissions");
    metrics_.bytes_transmitted = &registry->counter("sim.bytes_transmitted");
    metrics_.dropped_unreachable =
        &registry->counter("sim.dropped_unreachable");
    metrics_.pending_events = &registry->gauge("sim.pending_events");
    metrics_.now_ms = &registry->gauge("sim.now_ms");
}

void Simulator::schedule(SimTime delay_ms, std::function<void()> action) {
    SARIADNE_EXPECTS(delay_ms >= 0);
    events_.push(Event{now_ + delay_ms, next_seq_++, std::move(action)});
}

void Simulator::deliver(NodeId to, const Message& msg) {
    if (!topology_.is_up(to)) return;  // went down while in flight
    ++stats_.deliveries;
    ++stats_.per_type[msg.type];
    if (metrics_.deliveries != nullptr) {
        metrics_.deliveries->inc();
        // Per-type counters are looked up on demand: the type universe is
        // small and stable, and the lookup cost sits on the (simulated)
        // delivery path, not a real hot path.
        metrics_.registry
            ->counter("sim.deliveries{type=\"" + msg.type + "\"}")
            .inc();
    }
    if (apps_[to] != nullptr) apps_[to]->on_message(*this, to, msg);
}

void Simulator::unicast(NodeId from, NodeId to, Message msg) {
    SARIADNE_EXPECTS(from < topology_.node_count());
    SARIADNE_EXPECTS(to < topology_.node_count());
    ++stats_.unicasts;
    if (metrics_.unicasts != nullptr) metrics_.unicasts->inc();
    msg.source = from;
    if (from == to) {
        schedule(0, [this, to, m = std::move(msg)] { deliver(to, m); });
        return;
    }
    const int hops = topology_.hop_distance(from, to);
    if (hops < 0) {
        ++stats_.dropped_unreachable;
        if (metrics_.dropped_unreachable != nullptr) {
            metrics_.dropped_unreachable->inc();
        }
        return;
    }
    // Latency follows the weighted path (wired backbone links are cheaper
    // than radio hops in hybrid topologies); transmission counting stays
    // per physical link.
    const double cost = topology_.path_cost(from, to);
    stats_.link_transmissions += static_cast<std::uint64_t>(hops);
    stats_.bytes_transmitted +=
        static_cast<std::uint64_t>(hops) * msg.size_bytes;
    if (metrics_.link_transmissions != nullptr) {
        metrics_.link_transmissions->inc(static_cast<std::uint64_t>(hops));
        metrics_.bytes_transmitted->inc(static_cast<std::uint64_t>(hops) *
                                        msg.size_bytes);
    }
    schedule(cost * per_hop_latency_ms_,
             [this, to, m = std::move(msg)] { deliver(to, m); });
}

void Simulator::broadcast(NodeId from, std::uint32_t ttl_hops, Message msg) {
    SARIADNE_EXPECTS(from < topology_.node_count());
    ++stats_.broadcasts;
    if (metrics_.broadcasts != nullptr) metrics_.broadcasts->inc();
    msg.source = from;
    const auto dist = topology_.hop_distances(from);
    for (NodeId node = 0; node < topology_.node_count(); ++node) {
        if (node == from || dist[node] < 0) continue;
        if (static_cast<std::uint32_t>(dist[node]) > ttl_hops) continue;
        // Each covered node hears one radio transmission from its
        // predecessor on the flood tree.
        ++stats_.link_transmissions;
        stats_.bytes_transmitted += msg.size_bytes;
        if (metrics_.link_transmissions != nullptr) {
            metrics_.link_transmissions->inc();
            metrics_.bytes_transmitted->inc(msg.size_bytes);
        }
        schedule(dist[node] * per_hop_latency_ms_,
                 [this, node, m = msg] { deliver(node, m); });
    }
}

void Simulator::drain(SimTime until) {
    while (!events_.empty()) {
        const Event& top = events_.top();
        if (top.time > until) break;
        // Copy out before pop: the action may schedule further events.
        auto action = top.action;
        now_ = top.time;
        events_.pop();
        action();
    }
    if (metrics_.pending_events != nullptr) {
        metrics_.pending_events->set(
            static_cast<std::int64_t>(events_.size()));
        metrics_.now_ms->set(static_cast<std::int64_t>(now_));
    }
}

void Simulator::run() { drain(1e12); }

void Simulator::run(SimTime until) {
    drain(until);
    // The window's virtual time elapses in full even when the tail of it
    // held no events; otherwise back-to-back run() windows would skew
    // every now()-based staleness check by the idle gap.
    if (until > now_) now_ = until;
    if (metrics_.now_ms != nullptr) {
        metrics_.now_ms->set(static_cast<std::int64_t>(now_));
    }
}

std::size_t Simulator::step(std::size_t max_events) {
    std::size_t executed = 0;
    while (executed < max_events && !events_.empty()) {
        auto action = events_.top().action;
        now_ = events_.top().time;
        events_.pop();
        action();
        ++executed;
    }
    return executed;
}

}  // namespace sariadne::net
