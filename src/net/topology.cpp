#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace sariadne::net {

Topology Topology::random_geometric(std::size_t count, double radio_range,
                                    Rng& rng) {
    SARIADNE_EXPECTS(count >= 1);
    SARIADNE_EXPECTS(radio_range > 0);

    double range = radio_range;
    for (int attempt = 0;; ++attempt) {
        Topology topo;
        topo.positions_.resize(count);
        topo.adjacency_.assign(count, {});
        topo.weights_.assign(count, {});
        topo.up_.assign(count, 1);
        topo.infrastructure_.assign(count, 0);
        for (auto& pos : topo.positions_) {
            pos.x = rng.uniform();
            pos.y = rng.uniform();
        }
        for (NodeId a = 0; a < count; ++a) {
            for (NodeId b = a + 1; b < count; ++b) {
                const double dx = topo.positions_[a].x - topo.positions_[b].x;
                const double dy = topo.positions_[a].y - topo.positions_[b].y;
                if (std::sqrt(dx * dx + dy * dy) <= range) {
                    topo.add_link(a, b);
                }
            }
        }
        if (topo.connected()) return topo;
        // Every 8 failed samples, widen the range 25 % — guarantees
        // termination (range √2 always connects the unit square).
        if (attempt % 8 == 7) range *= 1.25;
    }
}

Topology Topology::grid(std::size_t width, std::size_t height) {
    SARIADNE_EXPECTS(width >= 1 && height >= 1);
    Topology topo;
    const std::size_t count = width * height;
    topo.positions_.resize(count);
    topo.adjacency_.assign(count, {});
    topo.weights_.assign(count, {});
    topo.up_.assign(count, 1);
    topo.infrastructure_.assign(count, 0);
    const auto id = [width](std::size_t x, std::size_t y) {
        return static_cast<NodeId>(y * width + x);
    };
    for (std::size_t y = 0; y < height; ++y) {
        for (std::size_t x = 0; x < width; ++x) {
            topo.positions_[id(x, y)] =
                Position{static_cast<double>(x) / static_cast<double>(width),
                         static_cast<double>(y) / static_cast<double>(height)};
            if (x + 1 < width) topo.add_link(id(x, y), id(x + 1, y));
            if (y + 1 < height) topo.add_link(id(x, y), id(x, y + 1));
        }
    }
    return topo;
}

void Topology::add_link(NodeId a, NodeId b, double weight) {
    SARIADNE_EXPECTS(a < adjacency_.size() && b < adjacency_.size() && a != b);
    SARIADNE_EXPECTS(weight > 0);
    adjacency_[a].push_back(b);
    weights_[a].push_back(weight);
    adjacency_[b].push_back(a);
    weights_[b].push_back(weight);
}

Topology Topology::hybrid(std::size_t wireless_count, std::size_t ap_count,
                          double radio_range, Rng& rng, double wired_weight) {
    SARIADNE_EXPECTS(ap_count >= 1);
    SARIADNE_EXPECTS(wired_weight > 0);
    const std::size_t count = ap_count + wireless_count;

    double range = radio_range;
    for (int attempt = 0;; ++attempt) {
        Topology topo;
        topo.positions_.resize(count);
        topo.adjacency_.assign(count, {});
        topo.weights_.assign(count, {});
        topo.up_.assign(count, 1);
        topo.infrastructure_.assign(count, 0);

        // Access points on a regular sub-grid of the unit square.
        const auto side = static_cast<std::size_t>(
            std::ceil(std::sqrt(static_cast<double>(ap_count))));
        for (NodeId ap = 0; ap < ap_count; ++ap) {
            topo.infrastructure_[ap] = 1;
            topo.positions_[ap] =
                Position{(0.5 + static_cast<double>(ap % side)) /
                             static_cast<double>(side),
                         (0.5 + static_cast<double>(ap / side)) /
                             static_cast<double>(side)};
        }
        // Wired backbone: full mesh between access points.
        for (NodeId a = 0; a < ap_count; ++a) {
            for (NodeId b = a + 1; b < ap_count; ++b) {
                topo.add_link(a, b, wired_weight);
            }
        }
        // Mobiles scattered uniformly; radio links among all nodes in range
        // (mobile-mobile and mobile-AP alike).
        for (NodeId m = static_cast<NodeId>(ap_count); m < count; ++m) {
            topo.positions_[m] = Position{rng.uniform(), rng.uniform()};
        }
        for (NodeId a = 0; a < count; ++a) {
            for (NodeId b = std::max<NodeId>(a + 1,
                                             static_cast<NodeId>(ap_count));
                 b < count; ++b) {
                const double dx = topo.positions_[a].x - topo.positions_[b].x;
                const double dy = topo.positions_[a].y - topo.positions_[b].y;
                if (std::sqrt(dx * dx + dy * dy) <= range) {
                    topo.add_link(a, b);
                }
            }
        }
        if (topo.connected()) return topo;
        if (attempt % 8 == 7) range *= 1.25;
    }
}

void Topology::rebuild_radio_links(double radio_range) {
    SARIADNE_EXPECTS(radio_range > 0);
    const std::size_t n = adjacency_.size();
    // Preserve wired links (non-unit weight between infrastructure nodes).
    std::vector<std::vector<NodeId>> kept_adj(n);
    std::vector<std::vector<double>> kept_w(n);
    for (NodeId a = 0; a < n; ++a) {
        for (std::size_t i = 0; i < adjacency_[a].size(); ++i) {
            const NodeId b = adjacency_[a][i];
            if (weights_[a][i] != 1.0 && infrastructure_[a] &&
                infrastructure_[b]) {
                kept_adj[a].push_back(b);
                kept_w[a].push_back(weights_[a][i]);
            }
        }
    }
    adjacency_ = std::move(kept_adj);
    weights_ = std::move(kept_w);
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b) {
            const double dx = positions_[a].x - positions_[b].x;
            const double dy = positions_[a].y - positions_[b].y;
            if (std::sqrt(dx * dx + dy * dy) <= radio_range) {
                add_link(a, b);
            }
        }
    }
}

std::vector<double> Topology::path_costs(NodeId from) const {
    SARIADNE_EXPECTS(from < adjacency_.size());
    std::vector<double> cost(adjacency_.size(), -1.0);
    if (!up_[from]) return cost;
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
    cost[from] = 0.0;
    frontier.emplace(0.0, from);
    while (!frontier.empty()) {
        const auto [d, node] = frontier.top();
        frontier.pop();
        if (d > cost[node]) continue;  // stale entry
        for (std::size_t i = 0; i < adjacency_[node].size(); ++i) {
            const NodeId next = adjacency_[node][i];
            if (!up_[next]) continue;
            const double candidate = d + weights_[node][i];
            if (cost[next] < 0 || candidate < cost[next]) {
                cost[next] = candidate;
                frontier.emplace(candidate, next);
            }
        }
    }
    return cost;
}

double Topology::path_cost(NodeId from, NodeId to) const {
    SARIADNE_EXPECTS(to < adjacency_.size());
    return path_costs(from)[to];
}

std::vector<int> Topology::hop_distances(NodeId from) const {
    SARIADNE_EXPECTS(from < adjacency_.size());
    std::vector<int> dist(adjacency_.size(), -1);
    if (!up_[from]) return dist;
    std::queue<NodeId> frontier;
    dist[from] = 0;
    frontier.push(from);
    while (!frontier.empty()) {
        const NodeId node = frontier.front();
        frontier.pop();
        for (const NodeId next : adjacency_[node]) {
            if (!up_[next] || dist[next] != -1) continue;
            dist[next] = dist[node] + 1;
            frontier.push(next);
        }
    }
    return dist;
}

int Topology::hop_distance(NodeId from, NodeId to) const {
    SARIADNE_EXPECTS(to < adjacency_.size());
    return hop_distances(from)[to];
}

bool Topology::connected() const {
    NodeId start = kNoNode;
    std::size_t up_count = 0;
    for (NodeId n = 0; n < adjacency_.size(); ++n) {
        if (up_[n]) {
            ++up_count;
            if (start == kNoNode) start = n;
        }
    }
    if (up_count <= 1) return true;
    const auto dist = hop_distances(start);
    std::size_t reached = 0;
    for (NodeId n = 0; n < adjacency_.size(); ++n) {
        if (up_[n] && dist[n] >= 0) ++reached;
    }
    return reached == up_count;
}

}  // namespace sariadne::net
