// Discrete-event network simulator. Single-threaded, deterministic: events
// (message deliveries, timers) execute in virtual-time order with a
// monotonically increasing sequence number breaking ties. Messages are
// type-tagged std::any payloads; protocol layers (src/ariadne) register a
// NodeApp per node and communicate exclusively through the simulator.
//
// Radio model: unicast between reachable nodes costs
//   hops * per_hop_latency_ms
// (Ariadne assumes an underlying MANET routing layer; we charge its path
// cost without simulating the routing protocol itself). TTL-bounded
// broadcast floods outward one hop per latency step, delivering to every
// up-node within the hop bound — the paper's "up to a given number of
// hops" advertisement/election primitive. Message counters feed the
// protocol-traffic metrics of the distributed benches.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "ariadne/transport_types.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace sariadne::net {

/// One scheduled node outage: the node goes down at `down_at` and (when
/// `up_at > down_at`) recovers at `up_at`, both in virtual ms from the
/// moment the plan is installed.
struct CrashWindow {
    NodeId node = kNoNode;
    SimTime down_at = 0;
    SimTime up_at = 0;  ///< <= down_at means the node never recovers
};

/// Deterministic fault-injection plan for the radio model. All randomness
/// is drawn from one seeded support::Rng in event order, so two runs with
/// the same plan over the same workload produce identical traffic. The
/// default-constructed plan is inert: no RNG is consulted and the
/// simulator behaves exactly as without a plan (zero-cost when off).
struct FaultPlan {
    std::uint64_t seed = 0x5EEDFA17ULL;
    /// Probability that a delivery is lost in flight (per receiver for
    /// broadcasts: each covered node fails its reception independently).
    double loss_probability = 0;
    /// Probability that a delivery is duplicated (the receiver hears the
    /// frame twice, the echo arriving after an extra jitter delay).
    double duplication_probability = 0;
    /// Uniform extra latency in [0, latency_jitter_ms) added per delivery.
    double latency_jitter_ms = 0;
    /// Scheduled node outages (crash/recover windows).
    std::vector<CrashWindow> crashes;
    /// Targeted drop hook for tests: when set and returning true for a
    /// scheduled delivery, that delivery is dropped (counted under
    /// faults_dropped). Evaluated before the probabilistic faults and
    /// without consuming RNG draws, so it never perturbs the random
    /// sequence of the surrounding plan.
    std::function<bool(NodeId from, NodeId to, const Message&)> drop;

    bool enabled() const noexcept {
        return loss_probability > 0 || duplication_probability > 0 ||
               latency_jitter_ms > 0 || !crashes.empty() || drop != nullptr;
    }
};

class Simulator;

/// Protocol behaviour attached to one node.
class NodeApp {
public:
    virtual ~NodeApp() = default;

    /// Called once when the simulation starts.
    virtual void on_start(Simulator& sim, NodeId self) = 0;

    /// Called for each delivered message.
    virtual void on_message(Simulator& sim, NodeId self, const Message& msg) = 0;
};

class Simulator {
public:
    explicit Simulator(Topology topology, double per_hop_latency_ms = 2.0)
        : topology_(std::move(topology)),
          apps_(topology_.node_count(), nullptr),
          per_hop_latency_ms_(per_hop_latency_ms) {}

    Topology& topology() noexcept { return topology_; }
    const Topology& topology() const noexcept { return topology_; }

    /// Attaches the protocol app of a node (not owned).
    void attach(NodeId node, NodeApp* app) {
        SARIADNE_EXPECTS(node < apps_.size());
        apps_[node] = app;
    }

    SimTime now() const noexcept { return now_; }

    /// Schedules a callback `delay_ms` of virtual time from now.
    void schedule(SimTime delay_ms, std::function<void()> action);

    /// Sends a message along the current shortest up-path; delivery is
    /// scheduled at now + hops * latency. Unreachable → counted + dropped.
    void unicast(NodeId from, NodeId to, Message msg);

    /// TTL-bounded flood: every up-node within `ttl_hops` of `from`
    /// (excluding `from`) receives the message at hop-distance latency.
    void broadcast(NodeId from, std::uint32_t ttl_hops, Message msg);

    /// Runs until the event queue drains; the clock stays at the last
    /// executed event.
    void run();

    /// Runs every event with time <= `until`, then advances the clock to
    /// `until` — back-to-back windows `run(t1); run(t2)` tile virtual time
    /// exactly like a single `run(t2)`, so now()-based staleness checks
    /// (advertisement timeouts, retry deadlines) see no seam.
    void run(SimTime until);

    /// Drains at most `max_events` events (test stepping).
    std::size_t step(std::size_t max_events);

    /// Installs (or replaces) the fault plan: seeds the fault RNG and
    /// schedules the plan's crash/recover windows relative to now().
    /// Loss/duplication/jitter apply to every delivery scheduled after the
    /// call; an inert plan (`FaultPlan{}` with no crashes) restores the
    /// perfect radio. Counters surface in stats() and as `sim.faults_*`.
    void set_faults(FaultPlan plan);

    const FaultPlan& faults() const noexcept { return faults_; }

    const TrafficStats& stats() const noexcept { return stats_; }

    /// Mirrors traffic counters into `registry` (live, alongside stats())
    /// under `sim.*` names; nullptr detaches. The registry must outlive
    /// the simulator.
    void set_metrics(obs::MetricsRegistry* registry);

    bool idle() const noexcept { return events_.empty(); }

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;
        std::function<void()> action;

        bool operator>(const Event& other) const noexcept {
            return time != other.time ? time > other.time : seq > other.seq;
        }
    };

    void deliver(NodeId to, const Message& msg);
    void drain(SimTime until);

    /// Applies the fault plan to one delivery of `msg` from `from` to `to`
    /// due at `delay_ms` from now: may drop it, add jitter, or schedule a
    /// duplicate echo. No-op pass-through when the plan is inert.
    void schedule_delivery(NodeId from, NodeId to, SimTime delay_ms,
                           Message msg);

    /// Cached handles into the attached registry (nullptr when detached).
    struct Metrics {
        obs::MetricsRegistry* registry = nullptr;
        obs::Counter* unicasts = nullptr;
        obs::Counter* broadcasts = nullptr;
        obs::Counter* deliveries = nullptr;
        obs::Counter* link_transmissions = nullptr;
        obs::Counter* bytes_transmitted = nullptr;
        obs::Counter* dropped_unreachable = nullptr;
        obs::Counter* faults_dropped = nullptr;
        obs::Counter* faults_duplicated = nullptr;
        obs::Counter* faults_crashes = nullptr;
        obs::Counter* faults_recoveries = nullptr;
        obs::Gauge* pending_events = nullptr;
        obs::Gauge* now_ms = nullptr;
    };

    Topology topology_;
    std::vector<NodeApp*> apps_;
    double per_hop_latency_ms_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_wire_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    TrafficStats stats_;
    Metrics metrics_;
    FaultPlan faults_;
    Rng fault_rng_;
};

}  // namespace sariadne::net
