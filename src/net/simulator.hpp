// Discrete-event network simulator. Single-threaded, deterministic: events
// (message deliveries, timers) execute in virtual-time order with a
// monotonically increasing sequence number breaking ties. Messages are
// type-tagged std::any payloads; protocol layers (src/ariadne) register a
// NodeApp per node and communicate exclusively through the simulator.
//
// Radio model: unicast between reachable nodes costs
//   hops * per_hop_latency_ms
// (Ariadne assumes an underlying MANET routing layer; we charge its path
// cost without simulating the routing protocol itself). TTL-bounded
// broadcast floods outward one hop per latency step, delivering to every
// up-node within the hop bound — the paper's "up to a given number of
// hops" advertisement/election primitive. Message counters feed the
// protocol-traffic metrics of the distributed benches.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "support/contracts.hpp"

namespace sariadne::net {

using SimTime = double;  ///< virtual milliseconds

struct Message {
    NodeId source = kNoNode;
    std::string type;   ///< protocol dispatch tag
    std::any payload;   ///< protocol-defined content
    std::uint32_t size_bytes = 0;  ///< modeled wire size (traffic accounting)
};

class Simulator;

/// Protocol behaviour attached to one node.
class NodeApp {
public:
    virtual ~NodeApp() = default;

    /// Called once when the simulation starts.
    virtual void on_start(Simulator& sim, NodeId self) = 0;

    /// Called for each delivered message.
    virtual void on_message(Simulator& sim, NodeId self, const Message& msg) = 0;
};

/// Traffic counters, aggregated over the run.
struct TrafficStats {
    std::uint64_t unicasts = 0;          ///< unicast sends
    std::uint64_t broadcasts = 0;        ///< broadcast initiations
    std::uint64_t deliveries = 0;        ///< messages handed to NodeApps
    std::uint64_t link_transmissions = 0;///< per-hop radio transmissions
    std::uint64_t bytes_transmitted = 0; ///< size-weighted link transmissions
    std::uint64_t dropped_unreachable = 0;
    std::map<std::string, std::uint64_t> per_type;  ///< deliveries by tag
};

class Simulator {
public:
    explicit Simulator(Topology topology, double per_hop_latency_ms = 2.0)
        : topology_(std::move(topology)),
          apps_(topology_.node_count(), nullptr),
          per_hop_latency_ms_(per_hop_latency_ms) {}

    Topology& topology() noexcept { return topology_; }
    const Topology& topology() const noexcept { return topology_; }

    /// Attaches the protocol app of a node (not owned).
    void attach(NodeId node, NodeApp* app) {
        SARIADNE_EXPECTS(node < apps_.size());
        apps_[node] = app;
    }

    SimTime now() const noexcept { return now_; }

    /// Schedules a callback `delay_ms` of virtual time from now.
    void schedule(SimTime delay_ms, std::function<void()> action);

    /// Sends a message along the current shortest up-path; delivery is
    /// scheduled at now + hops * latency. Unreachable → counted + dropped.
    void unicast(NodeId from, NodeId to, Message msg);

    /// TTL-bounded flood: every up-node within `ttl_hops` of `from`
    /// (excluding `from`) receives the message at hop-distance latency.
    void broadcast(NodeId from, std::uint32_t ttl_hops, Message msg);

    /// Runs until the event queue drains; the clock stays at the last
    /// executed event.
    void run();

    /// Runs every event with time <= `until`, then advances the clock to
    /// `until` — back-to-back windows `run(t1); run(t2)` tile virtual time
    /// exactly like a single `run(t2)`, so now()-based staleness checks
    /// (advertisement timeouts, retry deadlines) see no seam.
    void run(SimTime until);

    /// Drains at most `max_events` events (test stepping).
    std::size_t step(std::size_t max_events);

    const TrafficStats& stats() const noexcept { return stats_; }

    /// Mirrors traffic counters into `registry` (live, alongside stats())
    /// under `sim.*` names; nullptr detaches. The registry must outlive
    /// the simulator.
    void set_metrics(obs::MetricsRegistry* registry);

    bool idle() const noexcept { return events_.empty(); }

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;
        std::function<void()> action;

        bool operator>(const Event& other) const noexcept {
            return time != other.time ? time > other.time : seq > other.seq;
        }
    };

    void deliver(NodeId to, const Message& msg);
    void drain(SimTime until);

    /// Cached handles into the attached registry (nullptr when detached).
    struct Metrics {
        obs::MetricsRegistry* registry = nullptr;
        obs::Counter* unicasts = nullptr;
        obs::Counter* broadcasts = nullptr;
        obs::Counter* deliveries = nullptr;
        obs::Counter* link_transmissions = nullptr;
        obs::Counter* bytes_transmitted = nullptr;
        obs::Counter* dropped_unreachable = nullptr;
        obs::Gauge* pending_events = nullptr;
        obs::Gauge* now_ms = nullptr;
    };

    Topology topology_;
    std::vector<NodeApp*> apps_;
    double per_hop_latency_ms_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    TrafficStats stats_;
    Metrics metrics_;
};

}  // namespace sariadne::net
