// Random-waypoint mobility — the standard MANET motion model. Every
// battery node picks a waypoint uniformly in the unit square, moves toward
// it at its speed, pauses briefly, then picks the next one. Infrastructure
// nodes (access points) never move. Each step advances positions by
// speed × step and re-derives the radio links, so routes, vicinities and
// directory coverage genuinely change under the discovery protocol — the
// dynamics the paper's election scheme is built for.
#pragma once

#include <vector>

#include "net/simulator.hpp"
#include "support/rng.hpp"

namespace sariadne::net {

struct MobilityConfig {
    double speed = 0.01;        ///< unit-square lengths per second
    double step_ms = 500;       ///< simulation step between updates
    double radio_range = 0.25;  ///< range used when re-deriving links
    double pause_ms = 1000;     ///< dwell time at each waypoint
    std::uint64_t seed = 42;
};

/// Drives random-waypoint motion on a simulator's topology. Construct,
/// then start(); steps self-schedule until the simulator stops running.
class RandomWaypointMobility {
public:
    RandomWaypointMobility(Simulator& sim, MobilityConfig config);

    /// Schedules the first step.
    void start();

    /// Total distance travelled by all nodes so far (diagnostics).
    double distance_travelled() const noexcept { return travelled_; }

    std::uint64_t steps() const noexcept { return steps_; }

private:
    struct NodeMotion {
        Position waypoint;
        double pause_until_ms = 0;
    };

    void step();

    Simulator* sim_;
    MobilityConfig config_;
    Rng rng_;
    std::vector<NodeMotion> motion_;
    double travelled_ = 0;
    std::uint64_t steps_ = 0;
};

}  // namespace sariadne::net
