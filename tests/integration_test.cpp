// End-to-end integration: the §5 workload (22 ontologies, up to 100
// services, one provided capability each) through the full pipeline —
// generate → serialize → parse → publish/classify → query — plus the
// distributed protocol driving the same directories over the simulator.
#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/topology.hpp"
#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne {
namespace {

class Section5Workload : public ::testing::Test {
protected:
    Section5Workload()
        : workload_(workload::generate_universe(22, onto_config(), 2006)) {
        for (const auto& o : workload_.ontologies()) {
            kb_.register_ontology(o);
        }
    }

    static workload::OntologyGenConfig onto_config() {
        workload::OntologyGenConfig config;
        config.class_count = 30;
        return config;
    }

    workload::ServiceWorkload workload_;
    encoding::KnowledgeBase kb_;
};

TEST_F(Section5Workload, HundredServicesPublishAndAllRequestsSatisfied) {
    directory::SemanticDirectory directory(kb_);
    for (std::size_t i = 0; i < 100; ++i) {
        (void)directory.publish_xml(workload_.service_xml(i));
    }
    EXPECT_EQ(directory.service_count(), 100u);
    EXPECT_EQ(directory.capability_count(), 100u);

    for (std::size_t i = 0; i < 100; i += 7) {
        const auto result =
            directory.query_xml(workload_.matching_request_xml(i));
        EXPECT_TRUE(result.fully_satisfied()) << "request " << i;
    }
}

TEST_F(Section5Workload, DagAndFlatDirectoriesAgreeOnAllHundred) {
    directory::SemanticDirectory semantic(kb_);
    directory::FlatDirectory flat(kb_);
    for (std::size_t i = 0; i < 100; ++i) {
        const auto service = workload_.service(i);
        semantic.publish(service);
        flat.publish(service);
    }
    for (std::size_t i = 0; i < 100; i += 3) {
        const auto resolved = desc::resolve_request(
            workload_.matching_request(i), kb_.registry());
        const auto from_dag = semantic.query_resolved(resolved);
        directory::MatchStats stats;
        directory::QueryTiming timing;
        const auto from_flat = flat.query(resolved, stats, timing);
        ASSERT_FALSE(from_dag.per_capability[0].empty()) << i;
        ASSERT_FALSE(from_flat[0].empty()) << i;
        EXPECT_EQ(from_dag.per_capability[0][0].semantic_distance,
                  from_flat[0][0].semantic_distance)
            << i;
    }
}

TEST_F(Section5Workload, ChurnKeepsDirectoryConsistent) {
    directory::SemanticDirectory directory(kb_);
    std::vector<directory::ServiceId> ids;
    for (std::size_t i = 0; i < 60; ++i) {
        ids.push_back(directory.publish(workload_.service(i)).id);
    }
    // Withdraw every other service.
    for (std::size_t i = 0; i < 60; i += 2) {
        EXPECT_TRUE(directory.remove(ids[i]));
    }
    EXPECT_EQ(directory.service_count(), 30u);

    // Requests for surviving services still match; requests aimed at
    // removed services may or may not match others, but must not crash.
    for (std::size_t i = 1; i < 60; i += 2) {
        const auto result = directory.query(workload_.matching_request(i));
        EXPECT_TRUE(result.fully_satisfied()) << "surviving request " << i;
    }
    for (std::size_t i = 0; i < 60; i += 2) {
        EXPECT_NO_THROW((void)directory.query(workload_.matching_request(i)));
    }
}

TEST_F(Section5Workload, EndToEndOverSimulatedManet) {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1000;
    config.election_wait_ms = 30;
    config.vicinity_hops = 3;

    Rng rng(77);
    ariadne::DiscoveryNetwork network(
        net::Topology::random_geometric(25, 0.3, rng), config, kb_);
    network.start();
    network.run_for(6000);  // let the backbone form
    ASSERT_FALSE(network.directories().empty());

    // 30 providers scattered over the network.
    for (std::size_t i = 0; i < 30; ++i) {
        network.publish_service(static_cast<net::NodeId>(i % 25),
                                workload_.service_xml(i));
    }
    network.run_for(6000);

    // Every matching request must be answered and satisfied.
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < 30; i += 5) {
        ids.push_back(network.discover(static_cast<net::NodeId>((i * 3) % 25),
                                       workload_.matching_request_xml(i)));
    }
    network.run_for(20000);
    for (const auto id : ids) {
        const auto& outcome = network.outcome(id);
        EXPECT_TRUE(outcome.answered) << "request " << id;
        EXPECT_TRUE(outcome.satisfied) << "request " << id;
    }
}

TEST_F(Section5Workload, EngineHandlesFullUniverse) {
    DiscoveryEngine engine;
    for (const auto& o : workload_.ontologies()) engine.register_ontology(o);
    for (std::size_t i = 0; i < 50; ++i) {
        engine.publish(workload_.service(i));
    }
    std::size_t satisfied = 0;
    for (std::size_t i = 0; i < 50; ++i) {
        const auto results = engine.discover(workload_.matching_request(i));
        if (!results[0].empty()) ++satisfied;
    }
    EXPECT_EQ(satisfied, 50u);
}

}  // namespace
}  // namespace sariadne
