// QoS- and context-aware discovery (§2.2: Amigo-S "enables QoS- and
// context-awareness for service provisioning").
#include <gtest/gtest.h>

#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "description/process.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

desc::ServiceDescription with_profile(const std::string& name, double latency,
                                      const std::string& location) {
    desc::ServiceDescription service = th::workstation_service();
    service.profile.service_name = name;
    service.profile.qos.clear();
    service.profile.qos.push_back(desc::QosAttribute{"latencyMs", latency});
    service.profile.context.clear();
    service.profile.context.push_back(
        desc::ContextAttribute{"location", location});
    return service;
}

class QosFixture : public ::testing::Test {
protected:
    QosFixture() {
        engine_.register_ontology(th::media_ontology());
        engine_.register_ontology(th::server_ontology());
        engine_.publish(with_profile("FastLivingRoom", 10, "livingRoom"));
        engine_.publish(with_profile("SlowKitchen", 200, "kitchen"));
    }

    desc::ServiceRequest base_request() {
        desc::ServiceRequest request;
        request.capabilities.push_back(th::get_video_stream());
        return request;
    }

    DiscoveryEngine engine_;
};

TEST_F(QosFixture, UnconstrainedRequestSeesBothServices) {
    const auto results = engine_.discover(base_request());
    EXPECT_EQ(results[0].size(), 2u);  // equal distance, both returned
}

TEST_F(QosFixture, QosMaxFiltersSlowService) {
    auto request = base_request();
    request.qos_constraints.push_back(desc::QosConstraint{"latencyMs", -1e300, 50});
    const auto results = engine_.discover(request);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "FastLivingRoom");
}

TEST_F(QosFixture, QosMinFiltersFastService) {
    auto request = base_request();
    request.qos_constraints.push_back(
        desc::QosConstraint{"latencyMs", 100, 1e300});
    const auto results = engine_.discover(request);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "SlowKitchen");
}

TEST_F(QosFixture, MissingAttributeFailsConstraint) {
    auto request = base_request();
    request.qos_constraints.push_back(
        desc::QosConstraint{"throughputMbps", 0, 1e300});
    const auto results = engine_.discover(request);
    EXPECT_TRUE(results[0].empty());
}

TEST_F(QosFixture, ContextConstraintSelectsByLocation) {
    auto request = base_request();
    request.context_constraints.push_back(
        desc::ContextConstraint{"location", "kitchen"});
    const auto results = engine_.discover(request);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "SlowKitchen");
}

TEST_F(QosFixture, CombinedConstraintsIntersect) {
    auto request = base_request();
    request.qos_constraints.push_back(desc::QosConstraint{"latencyMs", -1e300, 50});
    request.context_constraints.push_back(
        desc::ContextConstraint{"location", "kitchen"});
    const auto results = engine_.discover(request);
    EXPECT_TRUE(results[0].empty());  // nothing is both fast and in the kitchen
}

TEST_F(QosFixture, ConstraintsPreferFartherAdmissibleHit) {
    // A semantically-exact but slow video server vs a farther-but-fast
    // generic one: the constraint must make the farther hit win.
    desc::ServiceDescription exact = with_profile("ExactButSlow", 500, "hall");
    exact.profile.capabilities.clear();
    desc::Capability cap = th::send_digital_stream();
    cap.name = "StreamVideo";
    cap.category_qname = th::server("VideoServer");
    cap.inputs[0].concept_qname = th::media("VideoResource");
    exact.profile.capabilities.push_back(cap);
    engine_.publish(exact);

    auto request = base_request();
    const auto unconstrained = engine_.discover(request);
    ASSERT_EQ(unconstrained[0].size(), 1u);
    EXPECT_EQ(unconstrained[0][0].service_name, "ExactButSlow");

    request.qos_constraints.push_back(desc::QosConstraint{"latencyMs", -1e300, 50});
    const auto constrained = engine_.discover(request);
    ASSERT_EQ(constrained[0].size(), 1u);
    EXPECT_EQ(constrained[0][0].service_name, "FastLivingRoom");
    EXPECT_GT(constrained[0][0].semantic_distance,
              unconstrained[0][0].semantic_distance);
}

TEST_F(QosFixture, ConstraintXmlRoundTrip) {
    auto request = base_request();
    request.qos_constraints.push_back(desc::QosConstraint{"latencyMs", 5, 50});
    request.context_constraints.push_back(
        desc::ContextConstraint{"location", "livingRoom"});
    const auto reloaded = desc::parse_request(desc::serialize_request(request));
    ASSERT_EQ(reloaded.qos_constraints.size(), 1u);
    EXPECT_DOUBLE_EQ(reloaded.qos_constraints[0].min_value, 5);
    EXPECT_DOUBLE_EQ(reloaded.qos_constraints[0].max_value, 50);
    ASSERT_EQ(reloaded.context_constraints.size(), 1u);
    EXPECT_EQ(reloaded.context_constraints[0].value, "livingRoom");

    const auto results = engine_.discover(desc::serialize_request(request));
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "FastLivingRoom");
}

TEST_F(QosFixture, ConversationCompatibilityFiltersProviders) {
    // Two video sources with published process models: one requires
    // payment before streaming, one streams directly.
    desc::ServiceDescription pay_first = with_profile("PayFirst", 10, "hall");
    pay_first.process = desc::Process::sequence(
        {desc::Process::atomic("pay"), desc::Process::atomic("stream")});
    engine_.publish(pay_first);

    desc::ServiceDescription direct = with_profile("DirectPlay", 10, "hall");
    direct.process = desc::Process::sequence(
        {desc::Process::repeat(desc::Process::atomic("stream"))});
    engine_.publish(direct);

    // The client intends to just stream.
    auto request = base_request();
    request.process = desc::Process::atomic("stream");
    const auto results = engine_.discover(request);
    ASSERT_FALSE(results[0].empty());
    for (const auto& hit : results[0]) {
        EXPECT_NE(hit.service_name, "PayFirst")
            << "pay-first protocol cannot realize a bare stream conversation";
    }
    // Providers without a process model (the two fixture services) are
    // kept — they claim nothing about their conversation.
    bool saw_direct = false;
    for (const auto& hit : results[0]) {
        if (hit.service_name == "DirectPlay") saw_direct = true;
    }
    EXPECT_TRUE(saw_direct);
}

TEST(QosConstraint, AdmitsBoundaryValues) {
    const desc::QosConstraint constraint{"x", 1.0, 2.0};
    EXPECT_TRUE(constraint.admits(1.0));
    EXPECT_TRUE(constraint.admits(2.0));
    EXPECT_FALSE(constraint.admits(0.999));
    EXPECT_FALSE(constraint.admits(2.001));
}

TEST(SatisfiesConstraints, DirectChecks) {
    desc::ServiceProfile profile;
    profile.qos.push_back(desc::QosAttribute{"latencyMs", 30});
    profile.context.push_back(desc::ContextAttribute{"room", "lab"});

    desc::ServiceRequest request;
    EXPECT_TRUE(desc::satisfies_constraints(profile, request));

    request.qos_constraints.push_back(desc::QosConstraint{"latencyMs", 0, 40});
    request.context_constraints.push_back(desc::ContextConstraint{"room", "lab"});
    EXPECT_TRUE(desc::satisfies_constraints(profile, request));

    request.context_constraints[0].value = "office";
    EXPECT_FALSE(desc::satisfies_constraints(profile, request));
}

}  // namespace
}  // namespace sariadne
