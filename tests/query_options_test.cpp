// Facade API redesign coverage: QueryOptions (top_k, max_distance,
// require_all_capabilities, parallel), the PublishReceipt return type, and
// the non-throwing try_publish / try_discover entry points.
#include <gtest/gtest.h>

#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "directory/semantic_directory.hpp"
#include "support/errors.hpp"
#include "support/result.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

/// Three providers whose SendDigitalStream-shaped capability sits at
/// semantic distance 3 / 2 / 1 from the Figure 1 GetVideoStream request
/// (category DigitalServer / MediaServer / VideoServer respectively).
class RankedProvidersFixture : public ::testing::Test {
protected:
    RankedProvidersFixture() {
        engine_.register_ontology(th::media_ontology());
        engine_.register_ontology(th::server_ontology());
        publish_at_level("Generic", "DigitalServer");
        publish_at_level("Middle", "MediaServer");
        publish_at_level("Specific", "VideoServer");
    }

    void publish_at_level(const std::string& service_name,
                          const char* category) {
        desc::ServiceDescription service;
        service.profile.service_name = service_name;
        service.profile.provider = "test";
        desc::Capability cap = th::send_digital_stream();
        cap.category_qname = th::server(category);
        service.profile.capabilities.push_back(std::move(cap));
        engine_.publish(std::move(service));
    }

    desc::ServiceRequest video_request() const {
        desc::ServiceRequest request;
        request.requester = "pda";
        request.capabilities.push_back(th::get_video_stream());
        return request;
    }

    DiscoveryEngine engine_;
};

TEST_F(RankedProvidersFixture, DefaultOptionsKeepBestDistanceTierOnly) {
    const auto results = engine_.discover(video_request());
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "Specific");
    EXPECT_EQ(results[0][0].semantic_distance, 1);
}

TEST_F(RankedProvidersFixture, TopKReturnsClosestFirstBeyondBestTier) {
    QueryOptions options;
    options.top_k = 2;
    const auto results = engine_.discover(video_request(), options);
    ASSERT_EQ(results[0].size(), 2u);
    EXPECT_EQ(results[0][0].service_name, "Specific");
    EXPECT_EQ(results[0][0].semantic_distance, 1);
    EXPECT_EQ(results[0][1].service_name, "Middle");
    EXPECT_EQ(results[0][1].semantic_distance, 2);
}

TEST_F(RankedProvidersFixture, TopKLargerThanHitCountReturnsAllRanked) {
    QueryOptions options;
    options.top_k = 10;
    const auto results = engine_.discover(video_request(), options);
    ASSERT_EQ(results[0].size(), 3u);
    EXPECT_EQ(results[0][0].semantic_distance, 1);
    EXPECT_EQ(results[0][1].semantic_distance, 2);
    EXPECT_EQ(results[0][2].semantic_distance, 3);
}

TEST_F(RankedProvidersFixture, MaxDistanceDropsFarHits) {
    QueryOptions options;
    options.top_k = 10;
    options.max_distance = 2;
    const auto results = engine_.discover(video_request(), options);
    ASSERT_EQ(results[0].size(), 2u);
    EXPECT_EQ(results[0][0].service_name, "Specific");
    EXPECT_EQ(results[0][1].service_name, "Middle");
}

TEST_F(RankedProvidersFixture, MaxDistanceZeroMeansExactMatchesOnly) {
    QueryOptions options;
    options.max_distance = 0;
    const auto results = engine_.discover(video_request(), options);
    EXPECT_TRUE(results[0].empty());
}

TEST_F(RankedProvidersFixture, MaxDistanceComposesWithBestTierDefault) {
    // Without top_k, max_distance filters and the minimal tier still wins.
    QueryOptions options;
    options.max_distance = 2;
    const auto results = engine_.discover(video_request(), options);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "Specific");
}

TEST_F(RankedProvidersFixture, MaxDistanceBoundaryIsInclusiveOnEveryPath) {
    // The pinned contract: a hit at semantic distance exactly equal to
    // max_distance is KEPT (<=, not <), on every query path — top-k
    // selection, the best-tier min scan, and both the signature-carrying
    // and registry-only request resolutions. The farthest provider here
    // sits at distance 3, so max_distance = 3 must keep all three hits
    // and max_distance = 2 must be the first value that drops one.
    QueryOptions at_bound;
    at_bound.top_k = 10;
    at_bound.max_distance = 3;
    const auto kept = engine_.discover(video_request(), at_bound);
    ASSERT_EQ(kept[0].size(), 3u);
    EXPECT_EQ(kept[0].back().semantic_distance, 3);  // exactly at the bound

    QueryOptions below;
    below.top_k = 10;
    below.max_distance = 2;
    const auto dropped = engine_.discover(video_request(), below);
    EXPECT_EQ(dropped[0].size(), 2u);

    // Best-tier path (no top_k): the minimum-distance hit is at 1, so a
    // bound of exactly 1 keeps it and 0 drops it.
    QueryOptions tier_bound;
    tier_bound.max_distance = 1;
    ASSERT_EQ(engine_.discover(video_request(), tier_bound)[0].size(), 1u);
    tier_bound.max_distance = 0;
    EXPECT_TRUE(engine_.discover(video_request(), tier_bound)[0].empty());

    // Same boundary through the directory facade on a pre-resolved request
    // (the daemon's path) — signatures attached, encoded fast path taken.
    const auto resolved = desc::resolve_request(
        video_request(), engine_.knowledge_base());
    QueryOptions resolved_bound;
    resolved_bound.top_k = 10;
    resolved_bound.max_distance = 3;
    const auto via_directory =
        engine_.directory().query_resolved(resolved, resolved_bound);
    ASSERT_EQ(via_directory.per_capability.size(), 1u);
    EXPECT_EQ(via_directory.per_capability[0].size(), 3u);
    resolved_bound.max_distance = 2;
    EXPECT_EQ(engine_.directory()
                  .query_resolved(resolved, resolved_bound)
                  .per_capability[0]
                  .size(),
              2u);
}

TEST_F(RankedProvidersFixture, RequireAllCapabilitiesIsAllOrNothing) {
    desc::ServiceRequest request = video_request();
    desc::Capability impossible = th::get_video_stream();
    impossible.name = "Impossible";
    impossible.outputs[0].concept_qname = th::media("Title");
    request.capabilities.push_back(impossible);

    // Lenient default: the satisfiable capability still reports its hits.
    const auto lenient = engine_.discover(request);
    ASSERT_EQ(lenient.size(), 2u);
    EXPECT_FALSE(lenient[0].empty());
    EXPECT_TRUE(lenient[1].empty());

    QueryOptions options;
    options.require_all_capabilities = true;
    const auto strict = engine_.discover(request, options);
    ASSERT_EQ(strict.size(), 2u);  // request shape preserved
    EXPECT_TRUE(strict[0].empty());
    EXPECT_TRUE(strict[1].empty());
}

TEST_F(RankedProvidersFixture, ParallelDiscoverMatchesSequentialAnswer) {
    desc::ServiceRequest request = video_request();
    desc::Capability second = th::get_video_stream();
    second.name = "SecondNeed";
    request.capabilities.push_back(second);

    QueryOptions parallel;
    parallel.parallel = true;
    parallel.top_k = 3;
    QueryOptions sequential = parallel;
    sequential.parallel = false;

    const auto seq = engine_.discover(request, sequential);
    const auto par = engine_.discover(request, parallel);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t c = 0; c < seq.size(); ++c) {
        ASSERT_EQ(par[c].size(), seq[c].size());
        for (std::size_t h = 0; h < seq[c].size(); ++h) {
            EXPECT_EQ(par[c][h].service_name, seq[c][h].service_name);
            EXPECT_EQ(par[c][h].semantic_distance, seq[c][h].semantic_distance);
        }
    }
}

TEST_F(RankedProvidersFixture, DirectoryQueryHonoursOptionsDirectly) {
    QueryOptions options;
    options.top_k = 2;
    const auto result = engine_.directory().query(video_request(), options);
    ASSERT_EQ(result.per_capability.size(), 1u);
    ASSERT_EQ(result.per_capability[0].size(), 2u);
    EXPECT_LE(result.per_capability[0][0].semantic_distance,
              result.per_capability[0][1].semantic_distance);
}

// --- PublishReceipt ---------------------------------------------------------

TEST_F(RankedProvidersFixture, PublishReceiptCarriesHandleAndTiming) {
    const PublishReceipt receipt = engine_.directory().publish_xml(
        desc::serialize_service(th::workstation_service()));
    EXPECT_GT(receipt.id, 0u);
    EXPECT_GT(receipt.timing.parse_ms, 0.0);
    EXPECT_GE(receipt.timing.insert_ms, 0.0);
    const auto [id, timing] = receipt;  // aggregate: bindings keep working
    EXPECT_EQ(id, receipt.id);
    EXPECT_EQ(timing.total_ms(), receipt.timing.total_ms());
}

// --- Result-returning entry points ------------------------------------------

TEST_F(RankedProvidersFixture, TryPublishReportsParseErrorsAsValues) {
    const auto outcome = engine_.try_publish("<broken");
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::kParse);
    EXPECT_FALSE(outcome.error().message.empty());
}

TEST_F(RankedProvidersFixture, TryPublishReportsLookupErrorsAsValues) {
    // Well-formed XML, but the concept URIs are unregistered.
    const auto outcome = engine_.try_publish(R"(
        <service name="Ghost"><capability name="C" kind="provided">
          <output concept="http://unknown.example/onto#Nope"/>
        </capability></service>)");
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::kLookup);
}

TEST_F(RankedProvidersFixture, TryPublishSucceedsWithReceipt) {
    const auto outcome = engine_.try_publish(
        desc::serialize_service(th::workstation_service()));
    ASSERT_TRUE(outcome.ok());
    EXPECT_GT(outcome.value().id, 0u);
}

TEST_F(RankedProvidersFixture, TryPublishReportsVersionMismatchAsValue) {
    desc::ServiceDescription service = th::workstation_service();
    service.profile.capabilities[0].code_version = 0xBAD;  // stale tag
    const auto outcome =
        engine_.try_publish(desc::serialize_service(service));
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, ErrorCode::kVersionMismatch);
}

TEST_F(RankedProvidersFixture, TryDiscoverRoundTrips) {
    desc::ServiceRequest request = video_request();
    const auto ok = engine_.try_discover(desc::serialize_request(request));
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().size(), 1u);
    EXPECT_EQ(ok.value()[0][0].service_name, "Specific");

    const auto bad = engine_.try_discover("not xml at all");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::kParse);
}

TEST(ResultType, ValueOrAndToString) {
    Result<int> good(7);
    Result<int> bad(ErrorInfo{ErrorCode::kLookup, "nope"});
    EXPECT_EQ(good.value_or(-1), 7);
    EXPECT_EQ(bad.value_or(-1), -1);
    EXPECT_STREQ(to_string(ErrorCode::kVersionMismatch), "version-mismatch");
}

}  // namespace
}  // namespace sariadne
