#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "description/amigos_io.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace sariadne::obs {
namespace {

TEST(Metrics, CounterAndGaugeBasics) {
    MetricsRegistry registry;
    registry.counter("layer.events").inc();
    registry.counter("layer.events").inc(4);
    EXPECT_EQ(registry.counter_value("layer.events"), 5u);
    EXPECT_EQ(registry.counter_value("layer.absent"), 0u);

    Gauge& depth = registry.gauge("layer.depth");
    depth.add(7);
    depth.sub(2);
    EXPECT_EQ(registry.gauge_value("layer.depth"), 5);
    depth.set(-3);
    EXPECT_EQ(registry.gauge_value("layer.depth"), -3);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
    MetricsRegistry registry;
    Counter& first = registry.counter("c");
    Counter& again = registry.counter("c");
    EXPECT_EQ(&first, &again);
    Histogram& created = registry.histogram("h", {1.0, 2.0});
    Histogram& reused = registry.histogram("h", {5.0});  // bounds fixed at birth
    EXPECT_EQ(&created, &reused);
    EXPECT_EQ(reused.bounds().size(), 2u);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
    MetricsRegistry registry;
    Counter& counter = registry.counter("t.hits");
    Gauge& gauge = registry.gauge("t.level");
    Histogram& histogram = registry.histogram("t.lat_ms", {1.0, 10.0});
    constexpr int kThreads = 8;
    constexpr int kRounds = 10000;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < kRounds; ++i) {
                counter.inc();
                gauge.add(1);
                histogram.observe(0.5);
            }
        });
    }
    for (auto& worker : pool) worker.join();
    constexpr auto kTotal = std::uint64_t{kThreads} * kRounds;
    EXPECT_EQ(counter.value(), kTotal);
    EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(kTotal));
    EXPECT_EQ(histogram.count(), kTotal);
    EXPECT_EQ(histogram.bucket(0), kTotal);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 * static_cast<double>(kTotal));
}

TEST(Metrics, HistogramBucketsAreUpperBoundInclusive) {
    Histogram histogram({1.0, 10.0});
    histogram.observe(0.5);
    histogram.observe(1.0);    // boundary value belongs to its own bucket
    histogram.observe(5.0);
    histogram.observe(100.0);  // above the last bound -> +Inf bucket
    EXPECT_EQ(histogram.bucket(0), 2u);
    EXPECT_EQ(histogram.bucket(1), 1u);
    EXPECT_EQ(histogram.bucket(2), 1u);
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 106.5 / 4.0);
}

TEST(Metrics, ScopedSpanRecordsIntoSink) {
    MetricsRegistry registry;
    { ScopedSpan null_span(nullptr); }  // null sink: no-op, no crash
    { auto span = registry.span("phase_ms"); }
    const Histogram* histogram = registry.find_histogram("phase_ms");
    ASSERT_NE(histogram, nullptr);
    EXPECT_EQ(histogram->count(), 1u);
    EXPECT_GE(histogram->sum(), 0.0);
}

TEST(Metrics, PrometheusExposition) {
    MetricsRegistry registry;
    registry.counter("proto.count{type=\"fwd\"}").inc(3);
    registry.gauge("proto.depth").set(-2);
    Histogram& latency = registry.histogram("proto.lat_ms", {1.0, 10.0});
    latency.observe(0.5);
    latency.observe(100.0);
    const std::string text = registry.to_prometheus();
    EXPECT_NE(text.find("sariadne_proto_count_total{type=\"fwd\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("sariadne_proto_depth -2\n"), std::string::npos);
    EXPECT_NE(text.find("sariadne_proto_lat_ms_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("sariadne_proto_lat_ms_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("sariadne_proto_lat_ms_count 2\n"), std::string::npos);
}

TEST(Metrics, JsonExposition) {
    MetricsRegistry registry;
    registry.counter("a.count").inc(2);
    registry.histogram("a.lat_ms", {1.0}).observe(0.25);
    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"a.count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[[\"1\",1],[\"+Inf\",0]]"),
              std::string::npos);
}

// Regression: the summary-pull reply handler used to count its reactive
// push under protocol.summary_pushes, conflating the proactive push flow
// with pull replies. With two directories — the second appointed after the
// first — exactly one proactive push (new directory announcing its empty
// summary to the established peer), one pull, and one reactive reply
// happen, and each must land in its own counter.
TEST(MetricsIntegration, SummaryPullRepliesAreNotCountedAsPushes) {
    namespace th = sariadne::testing;

    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());

    ariadne::ProtocolConfig config;
    config.protocol = ariadne::Protocol::kSAriadne;
    config.adv_timeout_ms = 1e9;  // no spontaneous elections

    MetricsRegistry registry;
    ariadne::DiscoveryNetwork network(net::Topology::grid(3, 1), config, kb,
                                      &registry);
    network.appoint_directory(0);
    network.start();
    network.run_for(200);
    EXPECT_EQ(registry.counter_value("protocol.summary_pushes"), 0u);
    EXPECT_EQ(registry.counter_value("protocol.summary_pulls"), 0u);
    EXPECT_EQ(registry.counter_value("protocol.summary_pull_replies"), 0u);

    network.appoint_directory(2);
    network.run_for(200);
    EXPECT_EQ(registry.counter_value("protocol.summary_pushes"), 1u);
    EXPECT_EQ(registry.counter_value("protocol.summary_pulls"), 1u);
    EXPECT_EQ(registry.counter_value("protocol.summary_pull_replies"), 1u);
}

// End-to-end accounting coherence over a churn run: every issued request
// lands in exactly one terminal bin (satisfied / unsatisfied / expired)
// or is still in flight, and draining the retry budget leaves no backlog.
TEST(MetricsIntegration, ChurnRunKeepsRequestAccountingCoherent) {
    namespace th = sariadne::testing;

    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());

    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 30;
    config.republish_period_ms = 1000;
    config.request_timeout_ms = 400;
    config.max_request_retries = 2;

    MetricsRegistry registry;
    ariadne::DiscoveryNetwork network(net::Topology::grid(4, 4), config, kb,
                                      &registry);
    network.appoint_directory(5);
    network.start();
    network.run_for(200);

    network.publish_service(
        0, desc::serialize_service(th::workstation_service()));
    network.run_for(800);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const std::string request_xml = desc::serialize_request(request);
    std::uint64_t issued = 0;
    for (int tick = 0; tick < 10; ++tick) {
        if (tick == 5) sim(network).topology().set_up(5, false);
        network.discover(static_cast<net::NodeId>((tick * 3 + 1) % 16),
                         request_xml);
        ++issued;
        network.run_for(400);
    }
    network.run_for(20000);  // drain retries, expiries and re-election

    EXPECT_EQ(registry.counter_value("protocol.requests_issued"), issued);
    const auto satisfied = registry.counter_value("protocol.requests_satisfied");
    const auto unsatisfied =
        registry.counter_value("protocol.requests_unsatisfied");
    const auto expired = registry.counter_value("protocol.requests_expired");
    const auto in_flight = registry.gauge_value("protocol.requests_in_flight");
    EXPECT_EQ(satisfied + unsatisfied + expired +
                  static_cast<std::uint64_t>(in_flight),
              issued);
    // Every request carried a retry budget, so all of them terminated.
    EXPECT_EQ(in_flight, 0);
    EXPECT_GT(satisfied, 0u);
    EXPECT_EQ(network.retry_backlog(), 0u);
    EXPECT_EQ(registry.gauge_value("protocol.retry_backlog"), 0);
    EXPECT_EQ(registry.gauge_value("protocol.deferred_requests"), 0);
}

}  // namespace
}  // namespace sariadne::obs
