// Chaos soak: the whole self-healing stack — acknowledged publish with
// retransmit/backoff, wire-level dedup, pub-nack re-routing, deferred
// request retry, periodic republish — under a hostile radio (30% loss,
// 10% duplication, latency jitter, two crash/recover windows). The run
// must stay *coherent*: every request lands in exactly one terminal bin,
// retry and publish backlogs drain to zero, no service is permanently
// lost while its provider is up, and the same seed replays byte-identical
// traffic.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "description/amigos_io.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace sariadne::ariadne {
namespace {

namespace th = sariadne::testing;
using net::NodeId;
using net::Topology;

encoding::KnowledgeBase make_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

ProtocolConfig chaos_config() {
    ProtocolConfig config;
    config.protocol = Protocol::kSAriadne;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 30;
    config.republish_period_ms = 2000;
    config.request_timeout_ms = 600;
    config.max_request_retries = 4;
    config.publish_ack_timeout_ms = 500;  // acked publish path ON
    config.publish_max_retries = 6;
    return config;
}

net::FaultPlan chaos_plan(std::uint64_t seed) {
    net::FaultPlan plan;
    plan.seed = seed;
    plan.loss_probability = 0.30;
    plan.duplication_probability = 0.10;
    plan.latency_jitter_ms = 20.0;
    // Two crash windows: the appointed directory dies mid-run (forcing
    // re-election, handover loss, republish recovery) and a relay flaps.
    // Node 0 (the provider) never crashes: its content must survive.
    plan.crashes.push_back({5, 6000.0, 12000.0});
    plan.crashes.push_back({10, 15000.0, 18000.0});
    return plan;
}

struct ChaosRun {
    net::TrafficStats traffic;
    std::uint64_t issued = 0;
    std::uint64_t satisfied = 0;
    std::uint64_t unsatisfied = 0;
    std::uint64_t expired = 0;
    std::int64_t in_flight = 0;
    std::size_t retry_backlog = 0;
    std::size_t publish_backlog = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t publishes_acked = 0;
    bool final_probe_satisfied = false;
};

ChaosRun run_chaos(std::uint64_t seed) {
    auto kb = make_kb();
    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(4, 4), chaos_config(), kb,
                             &registry);
    sim(network).set_faults(chaos_plan(seed));
    network.appoint_directory(5);
    network.start();
    network.run_for(300);

    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(700);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const std::string request_xml = desc::serialize_request(request);

    ChaosRun out;
    for (int tick = 0; tick < 20; ++tick) {
        // Clients spread over the grid, including ones inside crash
        // windows; requests issued from a crashed node defer until it
        // recovers instead of burning their retry budget.
        network.discover(static_cast<NodeId>((tick * 7 + 1) % 16),
                         request_xml);
        ++out.issued;
        network.run_for(1000);
    }
    network.run_for(20000);  // soak: retries, acks, crashes, recoveries

    // Quiesce: faults off, then drain every outstanding timer so the
    // terminal accounting below is exact, not a race with the clock.
    sim(network).set_faults(net::FaultPlan{});
    network.run_for(30000);

    out.traffic = network.traffic();
    out.satisfied = registry.counter_value("protocol.requests_satisfied");
    out.unsatisfied = registry.counter_value("protocol.requests_unsatisfied");
    out.expired = registry.counter_value("protocol.requests_expired");
    out.in_flight = registry.gauge_value("protocol.requests_in_flight");
    out.retry_backlog = network.retry_backlog();
    out.publish_backlog = network.publish_backlog();
    out.duplicates_dropped =
        registry.counter_value("protocol.duplicates_dropped");
    out.publishes_acked = registry.counter_value("protocol.publishes_acked");
    EXPECT_EQ(registry.counter_value("protocol.requests_issued"), out.issued);

    // Final probe on the clean network: the provider never crashed, so
    // its service must still be discoverable — nothing permanently lost.
    const auto probe = network.discover(15, request_xml);
    network.run_for(10000);
    out.final_probe_satisfied = network.outcome(probe).satisfied;
    return out;
}

TEST(Chaos, SoakKeepsAccountingCoherentAndHeals) {
    const ChaosRun run = run_chaos(0xC4A05);

    // The radio really was hostile.
    EXPECT_GT(run.traffic.faults_dropped, 0u);
    EXPECT_GT(run.traffic.faults_duplicated, 0u);
    EXPECT_EQ(run.traffic.faults_crashes, 2u);
    EXPECT_EQ(run.traffic.faults_recoveries, 2u);
    // Dedup and the ack machinery both saw action.
    EXPECT_GT(run.duplicates_dropped, 0u);
    EXPECT_GT(run.publishes_acked, 0u);

    // Coherence invariant, exact: every issued request is in one bin.
    EXPECT_EQ(run.satisfied + run.unsatisfied + run.expired +
                  static_cast<std::uint64_t>(run.in_flight),
              run.issued);
    EXPECT_EQ(run.in_flight, 0);
    EXPECT_GT(run.satisfied, 0u);

    // Backlogs drain completely once the network quiesces.
    EXPECT_EQ(run.retry_backlog, 0u);
    EXPECT_EQ(run.publish_backlog, 0u);

    // Self-healing: the surviving provider's service is discoverable.
    EXPECT_TRUE(run.final_probe_satisfied);
}

TEST(Chaos, SameSeedIsByteIdenticalDifferentSeedIsNot) {
    const ChaosRun a = run_chaos(0xC4A05);
    const ChaosRun b = run_chaos(0xC4A05);
    const ChaosRun c = run_chaos(0xBEEF);
    EXPECT_EQ(a.traffic, b.traffic);
    EXPECT_EQ(a.satisfied, b.satisfied);
    EXPECT_EQ(a.expired, b.expired);
    EXPECT_FALSE(a.traffic == c.traffic);
}

}  // namespace
}  // namespace sariadne::ariadne
