#include <memory>

#include <gtest/gtest.h>

#include "description/resolved.hpp"
#include "reasoner/knowledge_base.hpp"
#include "matching/match.hpp"
#include "description/online_matcher.hpp"
#include "matching/oracles.hpp"
#include "ontology/loader.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::matching {
namespace {

namespace th = sariadne::testing;
using desc::ResolvedCapability;

class MatchFixture : public ::testing::Test {
protected:
    MatchFixture() : oracle_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    ResolvedCapability resolve(const desc::Capability& cap) {
        return desc::resolve_capability(cap, kb_.registry());
    }

    encoding::KnowledgeBase kb_;
    EncodedOracle oracle_;
};

TEST_F(MatchFixture, PaperFigure1ScenarioMatchesWithDistance3) {
    // The paper's worked example: Match(SendDigitalStream, GetVideoStream)
    // holds with semantic distance 3.
    const auto provided = resolve(th::send_digital_stream());
    const auto required = resolve(th::get_video_stream());

    const MatchOutcome outcome = match_capability(provided, required, oracle_);
    EXPECT_TRUE(outcome.matched);
    EXPECT_EQ(outcome.semantic_distance, 3);
}

TEST_F(MatchFixture, ProvideGameDoesNotMatchVideoRequest) {
    // ProvideGame expects a GameResource; the PDA offers a VideoResource.
    const auto provided = resolve(th::provide_game());
    const auto required = resolve(th::get_video_stream());
    EXPECT_FALSE(matches(provided, required, oracle_));
}

TEST_F(MatchFixture, ExactMatchHasDistanceZero) {
    desc::Capability twin = th::send_digital_stream();
    twin.kind = desc::CapabilityKind::kRequired;
    const MatchOutcome outcome =
        match_capability(resolve(th::send_digital_stream()), resolve(twin),
                         oracle_);
    EXPECT_TRUE(outcome.matched);
    EXPECT_EQ(outcome.semantic_distance, 0);
}

TEST_F(MatchFixture, MatchIsDirectional) {
    // GetVideoStream (as an advertisement) cannot substitute
    // SendDigitalStream: its expected input VideoResource does not subsume
    // the more general DigitalResource offer.
    desc::Capability narrowed = th::get_video_stream();
    narrowed.kind = desc::CapabilityKind::kProvided;
    desc::Capability wide_request = th::send_digital_stream();
    wide_request.kind = desc::CapabilityKind::kRequired;
    EXPECT_FALSE(
        matches(resolve(narrowed), resolve(wide_request), oracle_));
}

TEST_F(MatchFixture, UncoveredProviderInputFailsTheMatch) {
    desc::Capability provided = th::send_digital_stream();
    provided.inputs.push_back(desc::Parameter{"extra", th::media("Title")});
    // Request offers only a VideoResource — nothing covers Title.
    EXPECT_FALSE(
        matches(resolve(provided), resolve(th::get_video_stream()), oracle_));
}

TEST_F(MatchFixture, MissingRequestedOutputFailsTheMatch) {
    desc::Capability required = th::get_video_stream();
    required.outputs.push_back(
        desc::Parameter{"extra", th::media("GameResource")});
    EXPECT_FALSE(
        matches(resolve(th::send_digital_stream()), resolve(required), oracle_));
}

TEST_F(MatchFixture, UnrelatedCategoryFailsTheMatch) {
    desc::Capability required = th::get_video_stream();
    required.category_qname = th::media("Title");  // different ontology branch
    EXPECT_FALSE(
        matches(resolve(th::send_digital_stream()), resolve(required), oracle_));
}

TEST_F(MatchFixture, InputlessProviderMatchesAnyInputs) {
    desc::Capability provided = th::send_digital_stream();
    provided.inputs.clear();
    EXPECT_TRUE(
        matches(resolve(provided), resolve(th::get_video_stream()), oracle_));
}

TEST_F(MatchFixture, OutputlessRequestIsSatisfiedByAnyProvider) {
    desc::Capability required = th::get_video_stream();
    required.outputs.clear();
    EXPECT_TRUE(
        matches(resolve(th::send_digital_stream()), resolve(required), oracle_));
}

TEST_F(MatchFixture, EquivalentCapabilitiesDetected) {
    desc::Capability twin = th::send_digital_stream();
    twin.name = "CloneCap";
    EXPECT_TRUE(equivalent_capabilities(resolve(th::send_digital_stream()),
                                        resolve(twin), oracle_));
    EXPECT_FALSE(equivalent_capabilities(resolve(th::send_digital_stream()),
                                         resolve(th::provide_game()), oracle_));
    // Matching at nonzero distance is not equivalence.
    desc::Capability specialized = th::get_video_stream();
    specialized.kind = desc::CapabilityKind::kProvided;
    EXPECT_FALSE(equivalent_capabilities(
        resolve(th::send_digital_stream()), resolve(specialized), oracle_));
}

TEST_F(MatchFixture, DistanceSumsAllThreeClauses) {
    // Inputs d=1 (DigitalResource ⊒ VideoResource), outputs d=1
    // (Stream ⊒ VideoStream), category d=2 (DigitalServer ⊒ VideoServer).
    desc::Capability required = th::get_video_stream();
    required.outputs[0].concept_qname = th::media("VideoStream");
    const MatchOutcome outcome = match_capability(
        resolve(th::send_digital_stream()), resolve(required), oracle_);
    EXPECT_TRUE(outcome.matched);
    EXPECT_EQ(outcome.semantic_distance, 4);
}

TEST_F(MatchFixture, BestPartnerChosenPerExpectedConcept) {
    // Provider offers both Stream and VideoStream; request expects
    // VideoStream. The VideoStream output (d=0) must be chosen over the
    // Stream output (d=1).
    desc::Capability provided = th::send_digital_stream();
    provided.outputs.push_back(desc::Parameter{"hd", th::media("VideoStream")});
    desc::Capability required = th::get_video_stream();
    required.outputs[0].concept_qname = th::media("VideoStream");
    const MatchOutcome outcome =
        match_capability(resolve(provided), resolve(required), oracle_);
    EXPECT_TRUE(outcome.matched);
    EXPECT_EQ(outcome.semantic_distance, 3);  // 1 input + 0 output + 2 category
}

TEST_F(MatchFixture, OracleCountsQueries) {
    const auto before = oracle_.queries();
    (void)match_capability(resolve(th::send_digital_stream()),
                           resolve(th::get_video_stream()), oracle_);
    EXPECT_GT(oracle_.queries(), before);
}

TEST(EncodedOracle, MemoCollisionsAndEvictionsNeverChangeAnswers) {
    // The oracle's distance memo is a 64-slot direct-mapped table: with
    // far more live (subsumer, subsumee) pairs than slots, most queries
    // collide into occupied slots and evict. A collision must only ever
    // cost a recompute — answering from a slot holding a *different* pair
    // would be silent corruption. Sweep every ordered pair of a
    // 120-concept ontology twice (28,800 queries over 64 slots), checking
    // each answer against the unmemoized code-table ground truth; the
    // second pass re-asks pairs whose slots have long been reused.
    workload::OntologyGenConfig config;
    config.class_count = 120;
    auto universe = workload::generate_universe(1, config, 99);
    encoding::KnowledgeBase kb;
    for (auto& o : universe) kb.register_ontology(std::move(o));
    const std::uint32_t concepts =
        static_cast<std::uint32_t>(kb.ontology(0).class_count());
    ASSERT_GE(concepts, 100u);

    EncodedOracle oracle(kb);
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint32_t a = 0; a < concepts; ++a) {
            for (std::uint32_t b = 0; b < concepts; ++b) {
                const onto::ConceptRef subsumer{0, a};
                const onto::ConceptRef subsumee{0, b};
                const auto expected = kb.distance(subsumer, subsumee);
                const auto actual = oracle.distance(subsumer, subsumee);
                ASSERT_EQ(actual.has_value(), expected.has_value())
                    << "pass " << pass << " pair (" << a << ", " << b << ")";
                if (expected.has_value()) {
                    ASSERT_EQ(*actual, *expected)
                        << "pass " << pass << " pair (" << a << ", " << b
                        << ")";
                }
            }
        }
    }
}

// Transitivity property (the DAG algorithms rely on it): if
// Match(A, B) and Match(B, C) then Match(A, C), over generated workloads.
class MatchTransitivity : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MatchTransitivity, ::testing::Range(0, 6));

TEST_P(MatchTransitivity, HoldsOnGeneratedCapabilities) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    auto universe = workload::generate_universe(2, onto_config,
                                                7000 + GetParam());
    encoding::KnowledgeBase kb;
    for (auto& o : universe) kb.register_ontology(std::move(o));
    EncodedOracle oracle(kb);

    workload::ServiceGenConfig svc_config;
    svc_config.seed = 4200 + GetParam();
    workload::ServiceWorkload workload(
        workload::generate_universe(2, onto_config, 7000 + GetParam()),
        svc_config);

    // Build chains: service S, a matching request R1 of S, and a matching
    // request R2 of R1 treated as an advertisement.
    int verified = 0;
    for (std::size_t i = 0; i < 40; ++i) {
        const auto provided = desc::resolve_capability(
            workload.service(i).profile.capabilities.front(), kb.registry());
        auto mid_cap = workload.matching_request(i).capabilities.front();
        const auto mid = desc::resolve_capability(mid_cap, kb.registry());
        ASSERT_TRUE(matches(provided, mid, oracle));

        // Narrow `mid` once more to get a third level.
        auto narrow_cap = mid_cap;
        const auto narrow =
            desc::resolve_capability(narrow_cap, kb.registry());
        if (matches(mid, narrow, oracle)) {
            EXPECT_TRUE(matches(provided, narrow, oracle))
                << "transitivity violated at service " << i;
            ++verified;
        }
    }
    EXPECT_GT(verified, 0);
}

TEST(OnlineMatcher, MatchesWithTimingBreakdown) {
    const onto::Ontology fig2 = workload::fig2_ontology();
    const auto [provided, required] = workload::fig2_capabilities(fig2);

    OnlineMatcher matcher({onto::save_ontology(fig2)},
                          std::make_unique<reasoner::RuleReasoner>());
    const MatchOutcome outcome = matcher.match(provided, required);
    EXPECT_TRUE(outcome.matched);

    const auto& timing = matcher.last_timing();
    EXPECT_GT(timing.parse_ms, 0.0);
    EXPECT_GT(timing.load_classify_ms, 0.0);
    EXPECT_GT(timing.subsumption_queries, 0u);
    EXPECT_GT(timing.total_ms(), 0.0);
}

TEST(OnlineMatcher, AgreesWithEncodedPath) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    EncodedOracle oracle(kb);
    const auto provided =
        desc::resolve_capability(th::send_digital_stream(), kb.registry());
    const auto required =
        desc::resolve_capability(th::get_video_stream(), kb.registry());
    const MatchOutcome fast = match_capability(provided, required, oracle);

    OnlineMatcher matcher({onto::save_ontology(th::media_ontology()),
                           onto::save_ontology(th::server_ontology())},
                          std::make_unique<reasoner::TableauLiteReasoner>());
    const MatchOutcome slow =
        matcher.match(th::send_digital_stream(), th::get_video_stream());
    EXPECT_EQ(fast.matched, slow.matched);
    EXPECT_EQ(fast.semantic_distance, slow.semantic_distance);
}

}  // namespace
}  // namespace sariadne::matching
