// Cross-cutting corner cases that the per-module suites do not reach:
// query_all semantics, taxonomy equivalence classes, sparse-handle state
// export, non-default encoding parameters end-to-end, simulator guards,
// and environment-tag algebra.
#include <gtest/gtest.h>

#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "directory/dag.hpp"
#include "directory/state_transfer.hpp"
#include "matching/oracles.hpp"
#include "net/simulator.hpp"
#include "reasoner/reasoner.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

class ExtrasFixture : public ::testing::Test {
protected:
    ExtrasFixture() : oracle_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    desc::ResolvedCapability resolve(const desc::Capability& cap) {
        return desc::resolve_capability(cap, kb_.registry(), "svc");
    }

    encoding::KnowledgeBase kb_;
    matching::EncodedOracle oracle_;
};

TEST_F(ExtrasFixture, QueryAllReturnsEveryMatchingVertex) {
    directory::CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    directory::MatchStats stats;
    desc::Capability generic = th::send_digital_stream();
    desc::Capability specific = th::send_digital_stream();
    specific.name = "SendVideo";
    specific.category_qname = th::server("VideoServer");
    dag.insert(directory::DagEntry{resolve(generic), 1}, oracle_, stats);
    dag.insert(directory::DagEntry{resolve(specific), 2}, oracle_, stats);

    const auto all =
        dag.query_all(resolve(th::get_video_stream()), oracle_, stats);
    EXPECT_EQ(all.size(), 2u);  // both generic (d=3) and specific (d=1)
    const auto best =
        dag.query(resolve(th::get_video_stream()), oracle_, stats);
    ASSERT_EQ(best.size(), 1u);
    EXPECT_EQ(best[0].capability_name, "SendVideo");
}

TEST(TaxonomyExtras, EquivalenceClassMembers) {
    onto::Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_equivalent(a, b);
    o.add_subclass_of(c, a);
    reasoner::RuleReasoner engine;
    const auto tax = engine.classify(o);

    const auto members = tax.equivalence_class(b);
    EXPECT_EQ(members.size(), 2u);
    EXPECT_TRUE(tax.is_representative(a));
    EXPECT_FALSE(tax.is_representative(b));
    // Non-representatives mirror their representative's structure.
    EXPECT_EQ(tax.direct_children(b), tax.direct_children(a));
    EXPECT_EQ(tax.depth(b), tax.depth(a));
}

TEST_F(ExtrasFixture, StateExportSurvivesSparseHandles) {
    directory::SemanticDirectory source(kb_);
    directory::SemanticDirectory target(kb_);
    const auto id1 = source.publish(th::workstation_service()).id;
    desc::ServiceDescription second = th::workstation_service();
    second.profile.service_name = "W2";
    source.publish(second);
    desc::ServiceDescription third = th::workstation_service();
    third.profile.service_name = "W3";
    source.publish(third);
    source.remove(id1);  // hole in the handle space

    EXPECT_EQ(directory::import_state(target, directory::export_state(source)),
              2u);
    EXPECT_EQ(target.service_count(), 2u);
}

TEST(EncodingParamsEndToEnd, NonDefaultParametersWorkThroughTheEngine) {
    DiscoveryEngine engine(encoding::EncodingParams{3, 4});
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    engine.publish(th::workstation_service());

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto results = engine.discover(request);
    ASSERT_FALSE(results[0].empty());
    EXPECT_EQ(results[0][0].semantic_distance, 3);
}

TEST(EnvironmentTag, OrderIndependentAndVersionSensitive) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    const auto tag_ab = kb.environment_tag(FlatSet<onto::OntologyIndex>{0, 1});
    const auto tag_ba = kb.environment_tag(FlatSet<onto::OntologyIndex>{1, 0});
    EXPECT_EQ(tag_ab, tag_ba);  // FlatSet normalizes; tags combine unordered
    const auto tag_a = kb.environment_tag(FlatSet<onto::OntologyIndex>{0});
    EXPECT_NE(tag_ab, tag_a);

    onto::Ontology v2 = th::media_ontology();
    v2.set_version(9);
    kb.register_ontology(std::move(v2));
    EXPECT_NE(kb.environment_tag(FlatSet<onto::OntologyIndex>{0}), tag_a);
}

TEST(SimulatorGuards, NegativeDelayAndBadNodesRejected) {
    net::Simulator sim(net::Topology::grid(2, 1));
    EXPECT_THROW(sim.schedule(-1.0, [] {}), ContractViolation);
    net::Message msg;
    msg.type = "x";
    EXPECT_THROW(sim.unicast(0, 99, std::move(msg)), ContractViolation);
}

TEST(SimulatorGuards, BroadcastFromDownNodeReachesNobody) {
    net::Topology topo = net::Topology::grid(3, 1);
    topo.set_up(0, false);
    net::Simulator sim(std::move(topo));
    net::Message msg;
    msg.type = "adv";
    sim.broadcast(0, 2, std::move(msg));
    sim.run();
    EXPECT_EQ(sim.stats().deliveries, 0u);
}

TEST_F(ExtrasFixture, LifetimeStatsAccumulateAcrossOperations) {
    directory::SemanticDirectory directory(kb_);
    directory.publish(th::workstation_service());
    const auto after_publish = directory.lifetime_stats().capability_matches;
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    (void)directory.query(request);
    EXPECT_GT(directory.lifetime_stats().capability_matches, after_publish);
}

TEST_F(ExtrasFixture, DagIndexQueryAllSpansMultipleDags) {
    directory::DagIndex index;
    directory::MatchStats stats;
    // Capability in the media+server signature DAG.
    index.insert(directory::DagEntry{resolve(th::send_digital_stream()), 1},
                 oracle_, stats);
    // Capability in a media-only DAG that also matches the request when
    // the request's category clause is dropped.
    desc::Capability media_only = th::send_digital_stream();
    media_only.name = "MediaOnly";
    media_only.category_qname.clear();
    index.insert(directory::DagEntry{resolve(media_only), 2}, oracle_, stats);

    desc::Capability wanted = th::get_video_stream();
    wanted.category_qname.clear();  // categoryless request matches both
    const auto all = index.query_all(resolve(wanted), oracle_, stats);
    EXPECT_EQ(all.size(), 2u);
}

}  // namespace
}  // namespace sariadne
