// Differential tests for the CapabilityDag reachability bitsets
// (DESIGN.md §12): bitset is_reachable pinned against BFS over the edge
// lists, splice-edge suppression pinned against a freshly rebuilt DAG
// (the transitive reduction of a fixed Match relation is unique, so a
// churned graph and a from-scratch rebuild must have identical edge
// sets), across crafted diamonds and randomized insert/remove sequences
// that exercise free-list slot reuse.
#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "directory/dag.hpp"
#include "directory/dag_index.hpp"
#include "matching/oracles.hpp"
#include "support/rng.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::directory {
namespace {

namespace th = sariadne::testing;
using desc::ResolvedCapability;

/// Live vertex ids of a DAG via the public API: every vertex is reachable
/// from some root (a parentless vertex is itself a root).
std::vector<VertexId> live_vertices(const CapabilityDag& dag) {
    std::vector<VertexId> order = dag.root_ids();
    std::set<VertexId> seen(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) {
        for (const VertexId child : dag.children(order[i])) {
            if (seen.insert(child).second) order.push_back(child);
        }
    }
    return order;
}

/// Ground-truth reachability from `from` by BFS over the children lists.
std::set<VertexId> bfs_reach(const CapabilityDag& dag, VertexId from) {
    std::vector<VertexId> frontier{from};
    std::set<VertexId> reach{from};
    while (!frontier.empty()) {
        const VertexId v = frontier.back();
        frontier.pop_back();
        for (const VertexId child : dag.children(v)) {
            if (reach.insert(child).second) frontier.push_back(child);
        }
    }
    return reach;
}

/// Asserts is_reachable agrees with BFS for every live ordered pair.
void expect_bitsets_match_bfs(const CapabilityDag& dag) {
    const std::vector<VertexId> live = live_vertices(dag);
    for (const VertexId u : live) {
        const std::set<VertexId> reach = bfs_reach(dag, u);
        for (const VertexId v : live) {
            EXPECT_EQ(dag.is_reachable(u, v), reach.count(v) != 0)
                << "is_reachable(" << u << ", " << v << ") disagrees with BFS";
        }
    }
}

/// Canonical vertex label: the sorted (service, capability-name) entries.
/// Unique per vertex, stable across insert orders and slot assignments.
std::string vertex_label(const CapabilityDag& dag, VertexId v) {
    std::vector<std::string> parts;
    for (const DagEntry& entry : dag.entries(v)) {
        parts.push_back(std::to_string(entry.service) + "#" +
                        entry.capability.name);
    }
    std::sort(parts.begin(), parts.end());
    std::string label;
    for (const std::string& part : parts) {
        label += part;
        label += ",";
    }
    return label;
}

/// Canonical edge set of every DAG in an index, as "u-label>v-label"
/// strings. Two indexes over the same live content must produce the same
/// set: the DAG edge set is the unique transitive reduction of Match.
std::set<std::string> canonical_edges(const DagIndex& index) {
    std::set<std::string> edges;
    index.for_each_dag([&](const CapabilityDag& dag) {
        for (const VertexId u : live_vertices(dag)) {
            for (const VertexId v : dag.children(u)) {
                edges.insert(vertex_label(dag, u) + ">" + vertex_label(dag, v));
            }
        }
    });
    return edges;
}

class ReachabilityFixture : public ::testing::Test {
protected:
    ReachabilityFixture() : oracle_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    ResolvedCapability resolve(const desc::Capability& cap) {
        return desc::resolve_capability(cap, kb_.registry(), "svc");
    }

    /// A capability between th::send_digital_stream() (category
    /// DigitalServer, input DigitalResource) and the fully specific
    /// (VideoServer, VideoResource) corner, narrowed along one axis.
    desc::Capability narrowed(const char* name, const char* category,
                              const char* input) {
        desc::Capability cap = th::send_digital_stream();
        cap.name = name;
        cap.category_qname = th::server(category);
        cap.inputs[0].concept_qname = th::media(input);
        return cap;
    }

    encoding::KnowledgeBase kb_;
    matching::EncodedOracle oracle_;
    MatchStats stats_;
};

TEST_F(ReachabilityFixture, RemoveSuppressesRedundantSpliceEdges) {
    // Diamond: generic covers two incomparable middles (one narrows the
    // category, one the input), both cover the specific corner.
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(narrowed("generic", "DigitalServer",
                                         "DigitalResource")),
                        1},
               oracle_, stats_);
    dag.insert(DagEntry{resolve(narrowed("m1", "MediaServer",
                                         "DigitalResource")),
                        2},
               oracle_, stats_);
    dag.insert(DagEntry{resolve(narrowed("m2", "DigitalServer",
                                         "VideoResource")),
                        3},
               oracle_, stats_);
    dag.insert(DagEntry{resolve(narrowed("specific", "VideoServer",
                                         "VideoResource")),
                        4},
               oracle_, stats_);
    ASSERT_EQ(dag.vertex_count(), 4u);
    ASSERT_TRUE(dag.validate(oracle_));
    const auto roots = dag.root_ids();
    ASSERT_EQ(roots.size(), 1u);
    ASSERT_EQ(dag.children(roots[0]).size(), 2u);

    // Removing m1 splices generic → specific — but generic still reaches
    // specific through m2, so the splice edge must be suppressed.
    EXPECT_EQ(dag.remove_service(2), 1u);
    EXPECT_EQ(dag.vertex_count(), 3u);
    EXPECT_TRUE(dag.validate(oracle_));
    ASSERT_EQ(dag.children(roots[0]).size(), 1u);
    const VertexId m2 = dag.children(roots[0])[0];
    EXPECT_EQ(dag.entries(m2).front().capability.name, "m2");
    ASSERT_EQ(dag.children(m2).size(), 1u);
    EXPECT_TRUE(dag.is_reachable(roots[0], dag.children(m2)[0]));
    expect_bitsets_match_bfs(dag);

    // With the alternate path gone too, the splice edge IS needed.
    EXPECT_EQ(dag.remove_service(3), 1u);
    EXPECT_TRUE(dag.validate(oracle_));
    ASSERT_EQ(dag.children(roots[0]).size(), 1u);
    EXPECT_EQ(dag.entries(dag.children(roots[0])[0]).front().capability.name,
              "specific");
    expect_bitsets_match_bfs(dag);
}

TEST_F(ReachabilityFixture, FreeSlotReuseKeepsClosureExact) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(narrowed("generic", "DigitalServer",
                                         "DigitalResource")),
                        1},
               oracle_, stats_);
    dag.insert(DagEntry{resolve(narrowed("middle", "MediaServer",
                                         "DigitalResource")),
                        2},
               oracle_, stats_);
    dag.insert(DagEntry{resolve(narrowed("specific", "VideoServer",
                                         "VideoResource")),
                        3},
               oracle_, stats_);
    ASSERT_EQ(dag.vertex_count(), 3u);
    ASSERT_EQ(dag.entry_count(), 3u);

    // Kill the interior vertex, then refill its slot with a capability
    // that wires in at a different position.
    EXPECT_EQ(dag.remove_service(2), 1u);
    EXPECT_EQ(dag.vertex_count(), 2u);
    EXPECT_TRUE(dag.validate(oracle_));
    dag.insert(DagEntry{resolve(narrowed("refill", "DigitalServer",
                                         "VideoResource")),
                        4},
               oracle_, stats_);
    EXPECT_EQ(dag.vertex_count(), 3u);
    EXPECT_EQ(dag.entry_count(), 3u);
    EXPECT_FALSE(dag.empty());
    EXPECT_TRUE(dag.validate(oracle_));
    expect_bitsets_match_bfs(dag);

    // Drain completely: the counters must hit zero without scanning.
    EXPECT_EQ(dag.remove_service(1), 1u);
    EXPECT_EQ(dag.remove_service(3), 1u);
    EXPECT_EQ(dag.remove_service(4), 1u);
    EXPECT_TRUE(dag.empty());
    EXPECT_EQ(dag.vertex_count(), 0u);
    EXPECT_EQ(dag.entry_count(), 0u);
    EXPECT_TRUE(dag.validate(oracle_));
}

TEST(ReachabilityChurn, RandomizedChurnMatchesBfsAndFreshRebuild) {
    // Generated workload over a richer ontology universe: interleave
    // publishes and removals (heavy slot reuse), checking after every
    // wave that the bitsets agree with BFS and every structural
    // invariant (incl. no transitively redundant edges) holds; at the
    // end the churned index's edge sets must equal those of an index
    // built from scratch over the survivors.
    workload::OntologyGenConfig config;
    config.class_count = 20;
    workload::ServiceWorkload workload(
        workload::generate_universe(10, config, 97));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    matching::EncodedOracle oracle(kb);
    MatchStats stats;
    SplitMix64 rng(4242);

    DagIndex index;
    std::vector<std::pair<ServiceId, std::size_t>> live;  // id, stream index
    std::size_t next_stream = 0;
    ServiceId next_id = 1;
    for (int wave = 0; wave < 8; ++wave) {
        for (int k = 0; k < 30; ++k) {
            const desc::ServiceDescription service =
                workload.service(next_stream);
            const ServiceId id = next_id++;
            for (auto& cap : desc::resolve_provided(service, kb)) {
                index.insert(DagEntry{std::move(cap), id}, oracle, stats);
            }
            live.emplace_back(id, next_stream);
            ++next_stream;
        }
        for (int k = 0; k < 12 && !live.empty(); ++k) {
            const std::size_t pick = rng.next() % live.size();
            index.remove_service(live[pick].first);
            live[pick] = live.back();
            live.pop_back();
        }
        index.for_each_dag([&](const CapabilityDag& dag) {
            EXPECT_TRUE(dag.validate(oracle)) << "wave " << wave;
            expect_bitsets_match_bfs(dag);
        });
    }

    DagIndex fresh;
    for (const auto& [id, stream_index] : live) {
        const desc::ServiceDescription service =
            workload.service(stream_index);
        for (auto& cap : desc::resolve_provided(service, kb)) {
            fresh.insert(DagEntry{std::move(cap), id}, oracle, stats);
        }
    }
    EXPECT_EQ(canonical_edges(index), canonical_edges(fresh));
    EXPECT_EQ(index.entry_count(), fresh.entry_count());
}

TEST(ReachabilityChurn, BatchInsertMatchesSequentialInsert) {
    // insert_batch (shard-sorted, generality-first) must converge to the
    // same unique transitive reduction as one-at-a-time inserts.
    workload::OntologyGenConfig config;
    config.class_count = 16;
    workload::ServiceWorkload workload(
        workload::generate_universe(8, config, 55));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    matching::EncodedOracle oracle(kb);
    MatchStats stats;

    DagIndex sequential;
    DagIndex batched;
    std::vector<DagEntry> entries;
    for (std::size_t i = 0; i < 80; ++i) {
        const desc::ServiceDescription service = workload.service(i);
        const ServiceId id = static_cast<ServiceId>(i + 1);
        for (auto& cap : desc::resolve_provided(service, kb)) {
            sequential.insert(DagEntry{cap, id}, oracle, stats);
            entries.push_back(DagEntry{std::move(cap), id});
        }
    }
    batched.insert_batch(std::move(entries), oracle, stats);

    batched.for_each_dag([&](const CapabilityDag& dag) {
        EXPECT_TRUE(dag.validate(oracle));
    });
    EXPECT_EQ(canonical_edges(sequential), canonical_edges(batched));
    EXPECT_EQ(sequential.entry_count(), batched.entry_count());
}

}  // namespace
}  // namespace sariadne::directory
