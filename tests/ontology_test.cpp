#include <gtest/gtest.h>

#include "ontology/loader.hpp"
#include "ontology/ontology.hpp"
#include "ontology/registry.hpp"
#include "support/errors.hpp"
#include "test_helpers.hpp"

namespace sariadne::onto {
namespace {

TEST(Ontology, AddClassIsIdempotent) {
    Ontology o("http://x");
    const ConceptId a = o.add_class("A");
    EXPECT_EQ(o.add_class("A"), a);
    EXPECT_EQ(o.class_count(), 1u);
}

TEST(Ontology, FindAndRequire) {
    Ontology o("http://x");
    o.add_class("A");
    EXPECT_NE(o.find_class("A"), kNoConcept);
    EXPECT_EQ(o.find_class("B"), kNoConcept);
    EXPECT_THROW(o.require_class("B"), LookupError);
}

TEST(Ontology, AxiomCountTracksEverything) {
    Ontology o("http://x");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    const auto d = o.add_class("D");
    o.add_subclass_of(b, a);
    o.add_equivalent(c, b);          // counted twice (symmetric storage)
    o.add_disjoint(c, d);            // counted twice
    o.define_intersection(d, {a, b});
    const auto p = o.add_property("p");
    o.set_property_domain(p, a);
    o.set_property_range(p, b);
    EXPECT_EQ(o.axiom_count(), 1u + 2u + 2u + 2u + 2u);
}

TEST(Ontology, SelfSubclassRejected) {
    Ontology o("http://x");
    const auto a = o.add_class("A");
    EXPECT_THROW(o.add_subclass_of(a, a), ContractViolation);
}

TEST(Ontology, IntersectionRequiresTwoDistinctParts) {
    Ontology o("http://x");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto d = o.add_class("D");
    EXPECT_THROW(o.define_intersection(d, {a, a}), ContractViolation);
    EXPECT_NO_THROW(o.define_intersection(d, {a, b}));
}

TEST(OntologyLoader, ParsesFullDocument) {
    const Ontology o = load_ontology(R"(
      <ontology uri="http://test/onto" version="4">
        <class name="A"/>
        <class name="B"><subClassOf name="A"/></class>
        <class name="C"><equivalentTo name="B"/></class>
        <class name="D">
          <equivalentToIntersection><of name="A"/><of name="B"/></equivalentToIntersection>
          <disjointWith name="C"/>
        </class>
        <property name="p"><domain name="A"/><range name="B"/></property>
        <property name="q"><subPropertyOf name="p"/></property>
      </ontology>)");
    EXPECT_EQ(o.uri(), "http://test/onto");
    EXPECT_EQ(o.version(), 4u);
    EXPECT_EQ(o.class_count(), 4u);
    EXPECT_EQ(o.property_count(), 2u);
    const auto& b = o.class_decl(o.require_class("B"));
    ASSERT_EQ(b.told_parents.size(), 1u);
    EXPECT_EQ(o.class_name(b.told_parents[0]), "A");
    const auto& d = o.class_decl(o.require_class("D"));
    EXPECT_EQ(d.intersection_of.size(), 2u);
    EXPECT_EQ(d.disjoints.size(), 1u);
}

TEST(OntologyLoader, ForwardReferencesAllowed) {
    const Ontology o = load_ontology(R"(
      <ontology uri="http://test/fwd">
        <class name="Child"><subClassOf name="Parent"/></class>
        <class name="Parent"/>
      </ontology>)");
    const auto& child = o.class_decl(o.require_class("Child"));
    EXPECT_EQ(o.class_name(child.told_parents[0]), "Parent");
}

TEST(OntologyLoader, UnknownAxiomFails) {
    EXPECT_THROW(load_ontology(R"(
      <ontology uri="u"><class name="A"><broken name="A"/></class></ontology>)"),
                 ParseError);
}

TEST(OntologyLoader, UnknownReferenceFails) {
    EXPECT_THROW(load_ontology(R"(
      <ontology uri="u"><class name="A"><subClassOf name="Nope"/></class></ontology>)"),
                 LookupError);
}

TEST(OntologyLoader, BadVersionFails) {
    EXPECT_THROW(load_ontology(R"(<ontology uri="u" version="abc"/>)"),
                 ParseError);
}

TEST(OntologyLoader, RoundTripPreservesSemantics) {
    const Ontology original = sariadne::testing::media_ontology();
    const Ontology reloaded = load_ontology(save_ontology(original));
    EXPECT_EQ(reloaded.uri(), original.uri());
    EXPECT_EQ(reloaded.class_count(), original.class_count());
    EXPECT_EQ(reloaded.property_count(), original.property_count());
    // Told parents preserved by name.
    for (ConceptId c = 0; c < original.class_count(); ++c) {
        const auto& before = original.class_decl(c);
        const ConceptId mapped = reloaded.require_class(before.name);
        const auto& after = reloaded.class_decl(mapped);
        ASSERT_EQ(after.told_parents.size(), before.told_parents.size());
        for (std::size_t i = 0; i < before.told_parents.size(); ++i) {
            EXPECT_EQ(reloaded.class_name(after.told_parents[i]),
                      original.class_name(before.told_parents[i]));
        }
    }
}

TEST(QualifiedName, SplitAndJoin) {
    const auto parts = QualifiedName::split("http://a/b#Concept");
    EXPECT_EQ(parts.ontology_uri, "http://a/b");
    EXPECT_EQ(parts.local_name, "Concept");
    EXPECT_EQ(QualifiedName::join("http://a/b", "Concept"), "http://a/b#Concept");
}

TEST(QualifiedName, MalformedInputsFail) {
    EXPECT_THROW(QualifiedName::split("no-hash"), ParseError);
    EXPECT_THROW(QualifiedName::split("#leading"), ParseError);
    EXPECT_THROW(QualifiedName::split("trailing#"), ParseError);
}

TEST(Registry, AddFindResolve) {
    OntologyRegistry registry;
    const OntologyIndex media = registry.add(sariadne::testing::media_ontology());
    const OntologyIndex server = registry.add(sariadne::testing::server_ontology());
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.find(sariadne::testing::kMediaUri), media);
    EXPECT_EQ(registry.find("http://unknown"), kNoOntology);

    const ConceptRef ref = registry.resolve(sariadne::testing::media("Stream"));
    EXPECT_EQ(ref.ontology, media);
    EXPECT_EQ(registry.qualified_name(ref), sariadne::testing::media("Stream"));
    EXPECT_NE(server, media);
}

TEST(Registry, ResolveErrors) {
    OntologyRegistry registry;
    registry.add(sariadne::testing::media_ontology());
    EXPECT_THROW(registry.resolve("http://unknown#X"), LookupError);
    EXPECT_THROW(registry.resolve(sariadne::testing::media("Nope")), LookupError);
}

TEST(Registry, ReRegisteringUpgradesInPlace) {
    OntologyRegistry registry;
    Ontology v1("http://evolve", 1);
    v1.add_class("A");
    const OntologyIndex index = registry.add(std::move(v1));
    const auto epoch1 = registry.epoch();

    Ontology v2("http://evolve", 2);
    v2.add_class("A");
    v2.add_class("B");
    EXPECT_EQ(registry.add(std::move(v2)), index);
    EXPECT_GT(registry.epoch(), epoch1);
    EXPECT_EQ(registry.at(index).version(), 2u);
    EXPECT_EQ(registry.at(index).class_count(), 2u);
    EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace sariadne::onto
