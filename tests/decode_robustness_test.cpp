// Decode-robustness regression tests: every public decode entry point for
// the four fuzzed wire-facing formats (XML/WSDL, Amigo-S descriptions,
// Bloom summary images, Ariadne wire messages) must map *every* truncation
// of a valid input to a clean Result/optional error — never an exception,
// never an abort. These pin the contract the fuzz targets in fuzz/ attack;
// a regression here is exactly the bug class the fuzzers exist to catch.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ariadne/wire.hpp"
#include "bloom/bloom_filter.hpp"
#include "description/amigos_io.hpp"
#include "description/wsdl.hpp"
#include "xml/parser.hpp"

namespace sariadne {
namespace {

// A document whose final character is load-bearing ('>'), so *every*
// strict prefix is malformed — ideal for exhaustive truncation sweeps.
constexpr std::string_view kServiceXml =
    "<service name=\"Workstation\" provider=\"lab\">"
    "<grounding protocol=\"SOAP\" address=\"http://h:1/ws\"/>"
    "<capability name=\"Send\" kind=\"provided\" codeVersion=\"3\">"
    "<category concept=\"http://media#Source\"/>"
    "<input name=\"t\" concept=\"http://media#Title\"/>"
    "<output concept=\"http://media#Stream\"/>"
    "</capability>"
    "<qos name=\"latency\" value=\"12.5\"/>"
    "</service>";

constexpr std::string_view kRequestXml =
    "<request requester=\"tablet\">"
    "<capability name=\"Need\">"
    "<output concept=\"http://media#Stream\"/>"
    "</capability>"
    "<qos name=\"latency\" max=\"50\"/>"
    "</request>";

constexpr std::string_view kWsdlXml =
    "<wsdl name=\"MediaServer\">"
    "<operation name=\"get\">"
    "<input name=\"title\" type=\"xs:string\"/>"
    "<output name=\"stream\" type=\"tns:media\"/>"
    "</operation>"
    "</wsdl>";

TEST(DecodeRobustness, XmlTruncationsAlwaysReturnError) {
    ASSERT_TRUE(xml::try_parse(kServiceXml).ok());
    for (std::size_t len = 0; len < kServiceXml.size(); ++len) {
        Result<xml::XmlDocument> result{xml::XmlDocument{}};
        EXPECT_NO_THROW(result = xml::try_parse(kServiceXml.substr(0, len)))
            << "prefix length " << len;
        EXPECT_FALSE(result.ok()) << "prefix length " << len;
    }
}

TEST(DecodeRobustness, WsdlTruncationsAlwaysReturnError) {
    ASSERT_TRUE(desc::try_parse_wsdl(kWsdlXml).ok());
    for (std::size_t len = 0; len < kWsdlXml.size(); ++len) {
        EXPECT_NO_THROW({
            const auto result = desc::try_parse_wsdl(kWsdlXml.substr(0, len));
            EXPECT_FALSE(result.ok()) << "prefix length " << len;
        });
    }
}

TEST(DecodeRobustness, AmigosServiceTruncationsAlwaysReturnError) {
    ASSERT_TRUE(desc::try_parse_service(kServiceXml).ok());
    for (std::size_t len = 0; len < kServiceXml.size(); ++len) {
        EXPECT_NO_THROW({
            const auto result =
                desc::try_parse_service(kServiceXml.substr(0, len));
            EXPECT_FALSE(result.ok()) << "prefix length " << len;
        });
    }
}

TEST(DecodeRobustness, AmigosRequestTruncationsAlwaysReturnError) {
    ASSERT_TRUE(desc::try_parse_request(kRequestXml).ok());
    for (std::size_t len = 0; len < kRequestXml.size(); ++len) {
        EXPECT_NO_THROW({
            const auto result =
                desc::try_parse_request(kRequestXml.substr(0, len));
            EXPECT_FALSE(result.ok()) << "prefix length " << len;
        });
    }
}

TEST(DecodeRobustness, AmigosMalformedNumericFieldsReturnError) {
    // Unchecked-conversion audit regressions: partial digits, overflow,
    // and non-finite doubles must all surface as parse errors.
    const auto bad = [](std::string_view xml) {
        const auto result = desc::try_parse_service(xml);
        EXPECT_FALSE(result.ok()) << xml;
    };
    bad("<service name=\"s\"><capability name=\"c\" codeVersion=\"12ab\"/>"
        "</service>");
    bad("<service name=\"s\"><capability name=\"c\" "
        "codeVersion=\"99999999999999999999999\"/></service>");
    bad("<service name=\"s\"><qos name=\"q\" value=\"nan\"/></service>");
    bad("<service name=\"s\"><qos name=\"q\" value=\"inf\"/></service>");
    bad("<service name=\"s\"><qos name=\"q\" value=\"1.5x\"/></service>");
}

TEST(DecodeRobustness, BloomTruncationsAlwaysReturnNullopt) {
    bloom::BloomFilter filter(bloom::BloomParams{256, 3});
    const std::vector<std::string> uris = {"http://a#X", "http://b#Y"};
    filter.insert_ontology_set(uris);
    const std::vector<std::uint64_t> image = filter.serialize();
    ASSERT_TRUE(bloom::BloomFilter::try_deserialize(image).has_value());

    for (std::size_t words = 0; words < image.size(); ++words) {
        std::optional<bloom::BloomFilter> result;
        EXPECT_NO_THROW(
            result = bloom::BloomFilter::try_deserialize(
                std::span(image.data(), words)));
        EXPECT_FALSE(result.has_value()) << "word count " << words;
    }
}

TEST(DecodeRobustness, BloomHostileParamsReturnNullopt) {
    // Header words claiming absurd geometry must be rejected before any
    // allocation happens: k = 0 (vacuously-true filter), k > 32, and a
    // bit count the payload does not back.
    const auto reject = [](std::vector<std::uint64_t> image) {
        EXPECT_FALSE(bloom::BloomFilter::try_deserialize(image).has_value());
    };
    reject({});
    reject({(std::uint64_t{64} << 32) | 0, 0});          // k = 0
    reject({(std::uint64_t{64} << 32) | 33, 0});         // k > 32
    reject({(std::uint64_t{16} << 32) | 2});             // bits < 64
    reject({(std::uint64_t{0xFFFFFFFFull} << 32) | 4});  // huge, no payload
}

std::vector<ariadne::wire::WireMessage> wire_samples() {
    using namespace ariadne::wire;
    std::vector<WireMessage> samples;
    samples.push_back({MsgType::kDirAdv, DirAdv{7}});
    samples.push_back({MsgType::kElectCall, ElectCall{2}});
    samples.push_back({MsgType::kElectCandidate, ElectCandidate{3, 0.75}});
    samples.push_back({MsgType::kElectAppoint, ElectAppoint{}});
    samples.push_back({MsgType::kPublish, PublishDoc{"<service/>", 42}});
    samples.push_back({MsgType::kPubAck, PubAck{42}});
    samples.push_back({MsgType::kPubNack, PubNack{42, "<service/>"}});
    samples.push_back({MsgType::kRequest, Request{99, 5, "<request/>"}});
    Response response;
    response.request_id = 99;
    response.hits = {{11, "Workstation", "Send", 2}, {12, "Media", "Send", 0}};
    response.satisfied = true;
    response.compute_ms = 1.25;
    response.directories_asked = 3;
    samples.push_back({MsgType::kResponse, response});
    samples.push_back({MsgType::kForward, Forward{7, 1, "<request/>"}});
    ForwardResponse fwd_response;
    fwd_response.request_id = 7;
    fwd_response.per_capability = {{{21, "A", "a", 1}}, {}};
    fwd_response.compute_ms = 0.5;
    samples.push_back({MsgType::kForwardResponse, fwd_response});
    samples.push_back({MsgType::kSummaryPush, SummaryPush{2, {1, 2, 3}}});
    samples.push_back({MsgType::kSummaryPull, SummaryPull{}});
    samples.push_back({MsgType::kHandover, Handover{"<state/>"}});
    PublishBatch batch;
    batch.docs.push_back(PublishDoc{"<service name='a'/>", 43});
    batch.docs.push_back(PublishDoc{"<service name='b'/>", 0});
    samples.push_back({MsgType::kPublishBatch, batch});
    return samples;
}

TEST(DecodeRobustness, PublishBatchRoundTripKeepsPerDocIds) {
    using namespace ariadne::wire;
    PublishBatch batch;
    batch.docs.push_back(PublishDoc{"<service name='a'/>", 7});
    batch.docs.push_back(PublishDoc{"", 0});
    batch.docs.push_back(PublishDoc{"<service name='c'/>", 9});
    const auto bytes = encode({MsgType::kPublishBatch, batch});
    const auto decoded = try_decode(bytes);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().type, MsgType::kPublishBatch);
    const auto& round = std::get<PublishBatch>(decoded.value().payload);
    ASSERT_EQ(round.docs.size(), batch.docs.size());
    for (std::size_t i = 0; i < batch.docs.size(); ++i) {
        EXPECT_EQ(round.docs[i].pub_id, batch.docs[i].pub_id);
        EXPECT_EQ(round.docs[i].document, batch.docs[i].document);
    }
}

TEST(DecodeRobustness, WireTruncationsAlwaysReturnErrorForEveryType) {
    // Exhaustive: every strict byte prefix of every message type decodes
    // to a kParse error, and the untruncated bytes round-trip.
    for (const auto& message : wire_samples()) {
        const std::vector<std::uint8_t> bytes = ariadne::wire::encode(message);
        const auto full = ariadne::wire::try_decode(bytes);
        ASSERT_TRUE(full.ok()) << ariadne::wire::to_string(message.type);
        EXPECT_EQ(full.value().type, message.type);

        for (std::size_t len = 0; len < bytes.size(); ++len) {
            const auto result =
                ariadne::wire::try_decode(std::span(bytes.data(), len));
            ASSERT_FALSE(result.ok())
                << ariadne::wire::to_string(message.type) << " prefix " << len;
            EXPECT_EQ(result.error().code, ErrorCode::kParse);
        }
    }
}

TEST(DecodeRobustness, WireTrailingGarbageAndBadHeaderRejected) {
    using namespace ariadne::wire;
    std::vector<std::uint8_t> bytes = encode({MsgType::kDirAdv, DirAdv{7}});

    std::vector<std::uint8_t> trailing = bytes;
    trailing.push_back(0);
    EXPECT_FALSE(try_decode(trailing).ok());

    std::vector<std::uint8_t> bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_FALSE(try_decode(bad_magic).ok());

    std::vector<std::uint8_t> bad_version = bytes;
    bad_version[2] = 9;
    EXPECT_FALSE(try_decode(bad_version).ok());

    std::vector<std::uint8_t> bad_type = bytes;
    bad_type[3] = 0;
    EXPECT_FALSE(try_decode(bad_type).ok());
    bad_type[3] = 200;
    EXPECT_FALSE(try_decode(bad_type).ok());
}

}  // namespace
}  // namespace sariadne
