// Composition planning over required capabilities (§2.2).
#include <gtest/gtest.h>

#include "core/composition.hpp"
#include "core/discovery_engine.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

desc::Capability require(const desc::Capability& provided) {
    desc::Capability cap = provided;
    cap.kind = desc::CapabilityKind::kRequired;
    return cap;
}

class CompositionFixture : public ::testing::Test {
protected:
    CompositionFixture() {
        engine_.register_ontology(th::media_ontology());
        engine_.register_ontology(th::server_ontology());
    }

    DiscoveryEngine engine_;
};

TEST_F(CompositionFixture, SingleLevelPlan) {
    engine_.publish(th::workstation_service());

    // A media renderer that needs a video stream source.
    desc::ServiceDescription renderer;
    renderer.profile.service_name = "WallScreen";
    desc::Capability needs = require(th::get_video_stream());
    renderer.profile.capabilities.push_back(needs);

    CompositionPlanner planner(engine_.directory());
    const CompositionPlan plan = planner.plan(renderer);
    EXPECT_TRUE(plan.complete());
    ASSERT_EQ(plan.steps.size(), 1u);
    EXPECT_EQ(plan.steps[0].consumer_service, "WallScreen");
    EXPECT_EQ(plan.steps[0].provider_service, "Workstation");
    EXPECT_EQ(plan.steps[0].provided_capability, "SendDigitalStream");
    EXPECT_EQ(plan.steps[0].grounding.address, "http://workstation.local/media");
}

TEST_F(CompositionFixture, TransitivePlanIsDependencyOrdered) {
    // Workstation itself requires a game source; a GameVault provides it.
    desc::ServiceDescription workstation = th::workstation_service();
    desc::Capability needs_games = require(th::provide_game());
    needs_games.name = "NeedsGameSource";
    // Avoid matching the workstation's own ProvideGame by requiring an
    // output the workstation does not produce.
    needs_games.outputs[0].concept_qname = th::media("GameResource");
    workstation.profile.capabilities.push_back(needs_games);
    engine_.publish(workstation);

    desc::ServiceDescription vault;
    vault.profile.service_name = "GameVault";
    vault.grounding.address = "http://vault.local";
    desc::Capability serves_games = th::provide_game();
    serves_games.name = "ServeGames";
    serves_games.outputs[0].concept_qname = th::media("GameResource");
    vault.profile.capabilities.push_back(serves_games);
    engine_.publish(vault);

    desc::ServiceDescription renderer;
    renderer.profile.service_name = "WallScreen";
    renderer.profile.capabilities.push_back(require(th::get_video_stream()));

    CompositionPlanner planner(engine_.directory());
    const CompositionPlan plan = planner.plan(renderer);
    ASSERT_TRUE(plan.complete());
    ASSERT_EQ(plan.steps.size(), 2u);
    // Dependency order: the workstation's own requirement resolves first.
    EXPECT_EQ(plan.steps[0].consumer_service, "Workstation");
    EXPECT_EQ(plan.steps[0].provider_service, "GameVault");
    EXPECT_EQ(plan.steps[1].consumer_service, "WallScreen");
    EXPECT_EQ(plan.steps[1].provider_service, "Workstation");
}

TEST_F(CompositionFixture, UnsatisfiableRequirementIsReportedAsGap) {
    desc::ServiceDescription lonely;
    lonely.profile.service_name = "Lonely";
    lonely.profile.capabilities.push_back(require(th::get_video_stream()));

    CompositionPlanner planner(engine_.directory());
    const CompositionPlan plan = planner.plan(lonely);
    EXPECT_FALSE(plan.complete());
    ASSERT_EQ(plan.gaps.size(), 1u);
    EXPECT_EQ(plan.gaps[0].consumer_service, "Lonely");
    EXPECT_EQ(plan.gaps[0].required_capability, "GetVideoStream");
    EXPECT_TRUE(plan.steps.empty());
}

TEST_F(CompositionFixture, CyclicDependencyDetected) {
    // A requires what only A provides: planning from a consumer of A must
    // not recurse forever and must name the cycle.
    desc::ServiceDescription self_feeding = th::workstation_service();
    desc::Capability needs = require(th::get_video_stream());
    needs.name = "NeedsOwnStream";
    self_feeding.profile.capabilities.push_back(needs);
    engine_.publish(self_feeding);

    desc::ServiceDescription renderer;
    renderer.profile.service_name = "WallScreen";
    renderer.profile.capabilities.push_back(require(th::get_video_stream()));

    CompositionPlanner planner(engine_.directory());
    const CompositionPlan plan = planner.plan(renderer);
    // The workstation's requirement can only be met by itself => gap.
    EXPECT_FALSE(plan.complete());
    ASSERT_EQ(plan.gaps.size(), 1u);
    EXPECT_EQ(plan.gaps[0].consumer_service, "Workstation");
    EXPECT_NE(plan.gaps[0].reason.find("cyclic"), std::string::npos);
    // The renderer's own requirement still resolves.
    ASSERT_EQ(plan.steps.size(), 1u);
    EXPECT_EQ(plan.steps[0].consumer_service, "WallScreen");
}

TEST_F(CompositionFixture, DepthLimitProducesGaps) {
    engine_.publish(th::workstation_service());
    desc::ServiceDescription renderer;
    renderer.profile.service_name = "WallScreen";
    renderer.profile.capabilities.push_back(require(th::get_video_stream()));

    CompositionPlanner planner(engine_.directory(), /*max_depth=*/0);
    const CompositionPlan plan = planner.plan(renderer);
    EXPECT_FALSE(plan.complete());
    ASSERT_EQ(plan.gaps.size(), 1u);
    EXPECT_NE(plan.gaps[0].reason.find("depth"), std::string::npos);
}

TEST_F(CompositionFixture, ServiceWithoutRequirementsYieldsEmptyPlan) {
    engine_.publish(th::workstation_service());
    CompositionPlanner planner(engine_.directory());
    const CompositionPlan plan = planner.plan(th::workstation_service());
    EXPECT_TRUE(plan.complete());
    EXPECT_TRUE(plan.steps.empty());
}

}  // namespace
}  // namespace sariadne
