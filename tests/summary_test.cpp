// The exact interval-bitmap summary stack, bottom to top: SparseBitmap
// trie invariants, IntervalSummary refcount/version/delta semantics, the
// summary-image wire codec, a randomized differential pinning
// IntervalSummary::covers to a brute-force subsumption oracle over a live
// SemanticDirectory, churn drain-to-baseline regressions, and the
// protocol-level behaviors the exact backend adds (concept-granular
// pruning, corrupt-image containment, delta-gap re-pull).
#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/topology.hpp"
#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "directory/semantic_directory.hpp"
#include "obs/metrics.hpp"
#include "summary/interval_summary.hpp"
#include "summary/sparse_bitmap.hpp"
#include "summary/summary_wire.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::summary {
namespace {

namespace th = sariadne::testing;

// ---------------------------------------------------------------------------
// SparseBitmap
// ---------------------------------------------------------------------------

TEST(SparseBitmap, SetTestClearRoundTrip) {
    SparseBitmap bm;
    const std::vector<std::uint32_t> bits = {
        0, 1, 63, 64, 65, 4095, 4096, 1u << 20,
        static_cast<std::uint32_t>(SparseBitmap::kCapacity - 1)};
    for (const std::uint32_t b : bits) {
        EXPECT_FALSE(bm.test(b));
        EXPECT_TRUE(bm.set(b));
        EXPECT_FALSE(bm.set(b)) << "second set of " << b << " must not change";
        EXPECT_TRUE(bm.test(b));
    }
    EXPECT_TRUE(bm.validate());
    EXPECT_EQ(bm.popcount(), bits.size());
    for (const std::uint32_t b : bits) {
        EXPECT_TRUE(bm.clear(b));
        EXPECT_FALSE(bm.clear(b)) << "second clear of " << b << " must no-op";
        EXPECT_FALSE(bm.test(b));
    }
    EXPECT_TRUE(bm.empty());
    EXPECT_TRUE(bm.validate());
}

TEST(SparseBitmap, MergeIsUnionAndIntersectsAgreesWithSets) {
    std::mt19937 rng(42);
    std::uniform_int_distribution<std::uint32_t> dist(0, 1u << 24);
    for (int round = 0; round < 20; ++round) {
        SparseBitmap a;
        SparseBitmap b;
        std::set<std::uint32_t> sa;
        std::set<std::uint32_t> sb;
        for (int i = 0; i < 200; ++i) {
            const std::uint32_t x = dist(rng);
            const std::uint32_t y = dist(rng);
            a.set(x);
            sa.insert(x);
            b.set(y);
            sb.insert(y);
        }
        bool shared = false;
        for (const std::uint32_t x : sa) shared = shared || sb.count(x) > 0;
        EXPECT_EQ(a.intersects(b), shared);
        EXPECT_EQ(b.intersects(a), shared);

        a.merge(b);
        EXPECT_TRUE(a.validate());
        std::set<std::uint32_t> expected = sa;
        expected.insert(sb.begin(), sb.end());
        std::vector<std::uint32_t> got;
        a.for_each_bit([&](std::uint32_t bit) { got.push_back(bit); });
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
        EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()), expected);
    }
}

TEST(SparseBitmap, DistantBitsDoNotIntersect) {
    // Exercises the guard-level early-out: populations in far-apart word
    // ranges must be proven disjoint above the leaf level.
    SparseBitmap lo;
    SparseBitmap hi;
    for (std::uint32_t i = 0; i < 300; ++i) {
        lo.set(i);
        hi.set((1u << 29) + i);
    }
    EXPECT_FALSE(lo.intersects(hi));
    EXPECT_FALSE(hi.intersects(lo));
    EXPECT_TRUE(lo.intersects_codes({5}));
    EXPECT_FALSE(lo.intersects_codes({(1u << 29) + 5}));
    EXPECT_FALSE(lo.intersects_codes({}));
}

TEST(SparseBitmap, FromLeavesRoundTripAndValidation) {
    SparseBitmap bm;
    std::mt19937 rng(7);
    std::uniform_int_distribution<std::uint32_t> dist(0, 1u << 22);
    for (int i = 0; i < 500; ++i) bm.set(dist(rng));

    SparseBitmap rebuilt;
    ASSERT_TRUE(SparseBitmap::from_leaves(bm.leaves(), rebuilt));
    EXPECT_EQ(rebuilt, bm);
    EXPECT_TRUE(rebuilt.validate());

    SparseBitmap out;
    EXPECT_FALSE(SparseBitmap::from_leaves({{3, 0}}, out));  // zero word
    EXPECT_FALSE(
        SparseBitmap::from_leaves({{5, 1}, {5, 2}}, out));  // duplicate index
    EXPECT_FALSE(
        SparseBitmap::from_leaves({{6, 1}, {2, 2}}, out));  // unsorted
    EXPECT_FALSE(SparseBitmap::from_leaves(
        {{SparseBitmap::kMaxWordIndex, 1}}, out));  // out of range
}

TEST(SparseBitmap, ReplaceWordDrivesGuards) {
    SparseBitmap bm;
    EXPECT_TRUE(bm.replace_word(100, 0b1010));
    EXPECT_TRUE(bm.test(100 * 64 + 1));
    EXPECT_TRUE(bm.test(100 * 64 + 3));
    EXPECT_TRUE(bm.validate());
    EXPECT_FALSE(bm.replace_word(100, 0b1010));  // identical word: unchanged
    EXPECT_TRUE(bm.replace_word(100, 0b0110));
    EXPECT_FALSE(bm.test(100 * 64 + 3));
    EXPECT_TRUE(bm.test(100 * 64 + 2));
    EXPECT_TRUE(bm.validate());
    EXPECT_TRUE(bm.replace_word(100, 0));  // erase
    EXPECT_FALSE(bm.replace_word(100, 0));
    EXPECT_TRUE(bm.empty());
    EXPECT_TRUE(bm.validate());
}

// ---------------------------------------------------------------------------
// IntervalSummary
// ---------------------------------------------------------------------------

constexpr std::uint64_t kTag = 0xFEEDu;

TEST(IntervalSummary, RefcountsFlipBitsOnlyOnBoundaryTransitions) {
    IntervalSummary s;
    const std::uint64_t v0 = s.version();
    s.retain("urn:a", kTag, Role::kOutputs, 7);
    const std::uint64_t v1 = s.version();
    EXPECT_GT(v1, v0);  // 0 -> 1 is a visible change
    EXPECT_EQ(s.code_count(), 1u);

    s.retain("urn:a", kTag, Role::kOutputs, 7);  // refcount 2, no new bit
    EXPECT_EQ(s.version(), v1);
    EXPECT_EQ(s.code_count(), 1u);

    s.release("urn:a", Role::kOutputs, 7);  // 2 -> 1, bit stays
    EXPECT_EQ(s.version(), v1);
    EXPECT_EQ(s.code_count(), 1u);

    s.release("urn:a", Role::kOutputs, 7);  // 1 -> 0, bit clears, entry dies
    EXPECT_GT(s.version(), v1);
    EXPECT_EQ(s.code_count(), 0u);
    EXPECT_TRUE(s.empty()) << "entry losing its last code must be erased";

    s.release("urn:a", Role::kOutputs, 7);  // untracked: no-op
    EXPECT_TRUE(s.empty());
}

RequestProbe one_probe(std::string uri, std::uint64_t tag, Role role,
                       std::vector<std::uint32_t> codes) {
    RequestProbe probe;
    probe.concepts.push_back(ProbeConcept{std::move(uri), tag, role,
                                          std::move(codes)});
    return probe;
}

TEST(IntervalSummary, CoversIsExactUnderMatchingTags) {
    IntervalSummary s;
    s.retain("urn:a", kTag, Role::kOutputs, 5);
    s.retain("urn:a", kTag, Role::kProperties, 9);

    EXPECT_TRUE(s.covers(RequestProbe{}));  // nothing required: trivially on
    EXPECT_TRUE(s.covers(one_probe("urn:a", kTag, Role::kOutputs, {5, 100})));
    EXPECT_FALSE(s.covers(one_probe("urn:a", kTag, Role::kOutputs, {100})));
    // Role separation: output code 5 must not satisfy a property probe.
    EXPECT_FALSE(s.covers(one_probe("urn:a", kTag, Role::kProperties, {5})));
    // Unknown ontology excludes under any table generation.
    EXPECT_FALSE(s.covers(one_probe("urn:b", kTag, Role::kOutputs, {5})));
    // Tag mismatch on a known ontology goes conservative, never excludes.
    EXPECT_TRUE(s.covers(one_probe("urn:a", kTag + 1, Role::kOutputs, {100})));

    RequestProbe conjunction;
    conjunction.concepts.push_back(
        ProbeConcept{"urn:a", kTag, Role::kOutputs, {5}});
    conjunction.concepts.push_back(
        ProbeConcept{"urn:a", kTag, Role::kProperties, {8}});
    EXPECT_FALSE(s.covers(conjunction)) << "covers must AND over probes";
}

TEST(IntervalSummary, DeltaDiffApplyReproducesTargetExactly) {
    IntervalSummary base;
    base.retain("urn:a", kTag, Role::kOutputs, 1);
    base.retain("urn:a", kTag, Role::kOutputs, 2);
    base.retain("urn:b", kTag, Role::kProperties, 70);

    IntervalSummary cur = base.snapshot();
    // Mutations spanning all delta shapes: new code in an existing word,
    // a cleared word, a dead entry, and a brand-new entry.
    cur.retain("urn:a", kTag, Role::kOutputs, 3);
    cur.release("urn:a", Role::kOutputs, 1);
    cur.release("urn:b", Role::kProperties, 70);
    cur.retain("urn:c", kTag, Role::kOutputs, 900);
    cur.set_version(base.version() + 10);

    const SummaryDelta delta = diff_summary(base, cur);
    EXPECT_EQ(delta.base_version, base.version());
    EXPECT_EQ(delta.new_version, cur.version());

    IntervalSummary replica = base.snapshot();
    EXPECT_EQ(replica.apply_delta(delta), DeltaApply::kApplied);
    EXPECT_TRUE(replica == cur);

    // Idempotent re-delivery.
    EXPECT_EQ(replica.apply_delta(delta), DeltaApply::kDuplicate);
    EXPECT_TRUE(replica == cur);

    // A receiver at neither base nor new version must demand a snapshot.
    IntervalSummary stranger = base.snapshot();
    stranger.set_version(base.version() + 999);
    EXPECT_EQ(stranger.apply_delta(delta), DeltaApply::kGap);
}

TEST(IntervalSummary, MergeUnionsBitsAndDegradesMixedTags) {
    IntervalSummary a;
    a.retain("urn:x", 10, Role::kOutputs, 1);
    a.retain("urn:y", 10, Role::kOutputs, 5);
    a.set_version(3);
    IntervalSummary b;
    b.retain("urn:x", 10, Role::kOutputs, 2);
    b.retain("urn:y", 11, Role::kOutputs, 6);  // different table generation
    b.set_version(8);

    a.merge(b);
    EXPECT_EQ(a.version(), 8u);
    EXPECT_EQ(a.entry_tag("urn:x"), 10u);
    EXPECT_TRUE(a.covers(one_probe("urn:x", 10, Role::kOutputs, {1})));
    EXPECT_TRUE(a.covers(one_probe("urn:x", 10, Role::kOutputs, {2})));
    EXPECT_FALSE(a.covers(one_probe("urn:x", 10, Role::kOutputs, {3})));
    // urn:y merged two generations: tag 0 forces conservative coverage.
    EXPECT_EQ(a.entry_tag("urn:y"), 0u);
    EXPECT_TRUE(a.covers(one_probe("urn:y", 10, Role::kOutputs, {999})));
}

TEST(IntervalSummary, SnapshotSharesRoutingStateButNotRefcounts) {
    IntervalSummary s;
    s.retain("urn:a", kTag, Role::kOutputs, 4);
    s.retain("urn:a", kTag, Role::kOutputs, 4);
    IntervalSummary snap = s.snapshot();
    EXPECT_TRUE(snap == s);
    ASSERT_EQ(snap.entries().size(), 1u);
    for (int r = 0; r < kRoleCount; ++r) {
        EXPECT_TRUE(snap.entries()[0].refs[r].empty());
    }
    // The original still holds refcount 2: one release keeps the bit.
    s.release("urn:a", Role::kOutputs, 4);
    EXPECT_TRUE(snap == s);
}

TEST(IntervalSummary, ClearRetainingVersionIsAVisibleChange) {
    IntervalSummary s;
    s.retain("urn:a", kTag, Role::kOutputs, 4);
    const std::uint64_t v = s.version();
    s.clear_retaining_version();
    EXPECT_TRUE(s.empty());
    EXPECT_GT(s.version(), v);
}

// ---------------------------------------------------------------------------
// Summary wire codec
// ---------------------------------------------------------------------------

TEST(SummaryWire, SnapshotRoundTripAndRejection) {
    IntervalSummary s;
    s.retain("urn:a", kTag, Role::kOutputs, 1);
    s.retain("urn:a", kTag, Role::kProperties, 65);
    s.retain("urn:b", kTag + 1, Role::kOutputs, 4097);
    s.set_version(77);

    const std::vector<std::uint8_t> image = encode_summary(s);
    auto decoded = try_decode_summary(image);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value() == s);

    EXPECT_FALSE(try_decode_summary({}).ok());
    // Truncation at every prefix length must be rejected, never crash.
    for (std::size_t len = 0; len < image.size(); ++len) {
        EXPECT_FALSE(
            try_decode_summary({image.data(), len}).ok())
            << "prefix of " << len << " bytes decoded";
    }
    std::vector<std::uint8_t> bad_magic = image;
    bad_magic[0] ^= 0xFF;
    EXPECT_FALSE(try_decode_summary(bad_magic).ok());
    std::vector<std::uint8_t> trailing = image;
    trailing.push_back(0);
    EXPECT_FALSE(try_decode_summary(trailing).ok());
    // A snapshot image is not a delta image and vice versa.
    EXPECT_FALSE(try_decode_delta(image).ok());
}

TEST(SummaryWire, DeltaRoundTripAndRejection) {
    // A realistic churn step: a handful of mutations against a summary
    // whose bulk stays untouched, so only the dirtied words travel.
    IntervalSummary base;
    for (std::uint32_t c = 0; c < 40; ++c) {
        base.retain("urn:a", kTag, Role::kOutputs, c * 97);
        base.retain("urn:b", kTag, Role::kProperties, c * 131);
    }
    IntervalSummary cur = base.snapshot();
    cur.retain("urn:a", kTag, Role::kOutputs, 2);
    cur.release("urn:a", Role::kOutputs, 97);
    cur.retain("urn:z", kTag, Role::kProperties, 130);

    const SummaryDelta delta = diff_summary(base, cur);
    const std::vector<std::uint8_t> image = encode_delta(delta);
    auto decoded = try_decode_delta(image);
    ASSERT_TRUE(decoded.ok());
    IntervalSummary replica = base.snapshot();
    EXPECT_EQ(replica.apply_delta(decoded.value()), DeltaApply::kApplied);
    EXPECT_TRUE(replica == cur);

    for (std::size_t len = 0; len < image.size(); ++len) {
        EXPECT_FALSE(try_decode_delta({image.data(), len}).ok());
    }
    EXPECT_FALSE(try_decode_summary(image).ok());

    // Delta images are where churn savings come from: a small mutation's
    // delta must undercut the full snapshot it replaces.
    EXPECT_LT(image.size(), encode_summary(cur).size());
}

// ---------------------------------------------------------------------------
// Differential: covers == brute-force subsumption over a live directory
// ---------------------------------------------------------------------------

struct World {
    encoding::KnowledgeBase kb;  // must precede workload (fill order)
    workload::ServiceWorkload workload;

    World(std::size_t ontologies, std::size_t classes, unsigned seed)
        : workload(make_universe(ontologies, classes, seed, kb)) {}

private:
    static std::vector<onto::Ontology> make_universe(
        std::size_t ontologies, std::size_t classes, unsigned seed,
        encoding::KnowledgeBase& kb) {
        workload::OntologyGenConfig config;
        config.class_count = classes;
        auto universe = workload::generate_universe(ontologies, config, seed);
        for (const auto& o : universe) kb.register_ontology(o);
        return universe;
    }
};

/// Ground truth for covers(): a required concept is satisfiable iff some
/// stored provided concept of the same role and ontology subsumes it (the
/// provider side is the subsumer in every match clause); a request is
/// coverable iff all its required output/property concepts are.
bool brute_force_covers(
    const std::vector<desc::ResolvedCapability>& request,
    const std::vector<desc::ResolvedCapability>& stored,
    encoding::KnowledgeBase& kb) {
    const auto satisfiable = [&](onto::ConceptRef required, bool outputs) {
        for (const desc::ResolvedCapability& cap : stored) {
            const auto& provided = outputs ? cap.outputs : cap.properties;
            for (const onto::ConceptRef p : provided) {
                if (p.ontology == required.ontology &&
                    kb.subsumes(p, required)) {
                    return true;
                }
            }
        }
        return false;
    };
    for (const desc::ResolvedCapability& cap : request) {
        for (const onto::ConceptRef r : cap.outputs) {
            if (!satisfiable(r, /*outputs=*/true)) return false;
        }
        for (const onto::ConceptRef r : cap.properties) {
            if (!satisfiable(r, /*outputs=*/false)) return false;
        }
    }
    return true;
}

class CoversDifferential : public ::testing::Test {
protected:
    void check_all_requests(World& world,
                            directory::SemanticDirectory& dir,
                            const std::vector<std::size_t>& live) {
        std::vector<desc::ResolvedCapability> stored;
        for (const std::size_t i : live) {
            auto caps =
                desc::resolve_provided(world.workload.service(i), world.kb);
            for (auto& cap : caps) stored.push_back(std::move(cap));
        }
        const IntervalSummary summary = dir.interval_summary();
        int mismatches = 0;
        for (std::size_t r = 0; r < 24; ++r) {
            const desc::ServiceRequest request =
                r < 12 ? world.workload.matching_request(r)
                       : world.workload.random_request(
                             static_cast<unsigned>(1000 + r));
            auto resolved = desc::resolve_request(request, world.kb);
            const RequestProbe probe =
                build_request_probe(resolved, world.kb);
            const bool exact = summary.covers(probe);
            const bool brute =
                brute_force_covers(resolved, stored, world.kb);
            EXPECT_EQ(exact, brute) << "request " << r;
            mismatches += exact != brute ? 1 : 0;
        }
        ASSERT_EQ(mismatches, 0);
    }
};

TEST_F(CoversDifferential, AgreesThroughPublishRemoveAndEnvBump) {
    World world(4, 22, 20260808);
    directory::SemanticDirectory dir(
        world.kb, directory::SummaryConfig{SummaryBackend::kInterval});

    std::vector<std::pair<std::size_t, directory::ServiceId>> published;
    for (std::size_t i = 0; i < 12; ++i) {
        published.emplace_back(
            i, dir.publish_xml(world.workload.service_xml(i)).id);
    }
    std::vector<std::size_t> live;
    for (const auto& [i, id] : published) live.push_back(i);
    check_all_requests(world, dir, live);

    // Removals release exactly: the summary must stay pinned to content.
    for (std::size_t k = 0; k < 5; ++k) {
        ASSERT_TRUE(dir.remove(published[k].second));
    }
    live.assign({5, 6, 7, 8, 9, 10, 11});
    check_all_requests(world, dir, live);

    // Environment bump: re-register ontology 0 under a new version, then
    // publish a service drawing on it — the tag conflict must trigger a
    // full re-projection, after which covers is exact again under the new
    // code tables.
    onto::Ontology bumped = world.kb.registry().at(0);
    bumped.set_version(bumped.version() + 1);
    world.kb.register_ontology(std::move(bumped));
    published.emplace_back(
        12, dir.publish_xml(world.workload.service_xml(12)).id);
    live.push_back(12);
    check_all_requests(world, dir, live);
}

// ---------------------------------------------------------------------------
// Churn regressions: refcounted maintenance never grows the summaries
// ---------------------------------------------------------------------------

TEST(SummaryChurn, BloomRefcountEntriesReturnToBaseline) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    directory::SemanticDirectory dir(kb);
    ASSERT_EQ(dir.summary_refcount_entries(), 0u);

    const std::string xml = desc::serialize_service(th::workstation_service());
    const auto first = dir.publish_xml(xml);
    const std::size_t baseline = dir.summary_refcount_entries();
    EXPECT_GT(baseline, 0u);

    // Republish churn: replacement must retain-before-release and erase
    // zero-count keys, keeping the map pinned to live content.
    directory::ServiceId last = first.id;
    for (int i = 0; i < 50; ++i) {
        last = dir.publish_xml(xml).id;
        ASSERT_EQ(dir.summary_refcount_entries(), baseline)
            << "refcount map grew on republish " << i;
    }
    ASSERT_TRUE(dir.remove(last));
    EXPECT_EQ(dir.summary_refcount_entries(), 0u);
}

TEST(SummaryChurn, IntervalCodesDrainToZero) {
    World world(3, 20, 4242);
    directory::SemanticDirectory dir(
        world.kb, directory::SummaryConfig{SummaryBackend::kInterval});
    ASSERT_EQ(dir.interval_code_count(), 0u);

    for (int cycle = 0; cycle < 10; ++cycle) {
        std::vector<directory::ServiceId> ids;
        for (std::size_t i = 0; i < 6; ++i) {
            ids.push_back(dir.publish_xml(world.workload.service_xml(i)).id);
        }
        EXPECT_GT(dir.interval_code_count(), 0u);
        for (const directory::ServiceId id : ids) {
            ASSERT_TRUE(dir.remove(id));
        }
        ASSERT_EQ(dir.interval_code_count(), 0u)
            << "cycle " << cycle << " leaked interval codes";
        ASSERT_EQ(dir.summary_refcount_entries(), 0u)
            << "cycle " << cycle << " leaked Bloom refcounts";
        EXPECT_TRUE(dir.interval_summary().empty());
    }
}

// ---------------------------------------------------------------------------
// Protocol integration: the exact backend on the wire
// ---------------------------------------------------------------------------

using ariadne::DiscoveryNetwork;
using ariadne::DiscoveryOutcome;
using ariadne::Protocol;
using ariadne::ProtocolConfig;
using net::Topology;

encoding::KnowledgeBase make_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

ProtocolConfig exact_config() {
    ProtocolConfig config;
    config.protocol = Protocol::kSAriadne;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1000;
    config.election_wait_ms = 30;
    config.summary_backend = SummaryBackend::kInterval;
    return config;
}

desc::ServiceDescription one_output_service(const std::string& name,
                                            const std::string& output_qname) {
    desc::Capability cap;
    cap.name = name + "Cap";
    cap.kind = desc::CapabilityKind::kProvided;
    cap.category_qname = th::server("DigitalServer");
    cap.outputs.push_back(desc::Parameter{"out", output_qname});
    desc::ServiceDescription service;
    service.profile.service_name = name;
    service.profile.provider = "amigo-home";
    service.middleware = "WS";
    service.grounding.protocol = "SOAP";
    service.grounding.address = "http://" + name + ".local/";
    service.profile.capabilities.push_back(std::move(cap));
    return service;
}

TEST(ExactSummary, EndToEndDiscoveryAcrossDirectories) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(9, 1), exact_config(), kb);
    network.appoint_directory(0);
    network.appoint_directory(8);
    network.start();
    network.run_for(100);

    network.publish_service(7,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(3000);  // let exact summaries propagate

    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(4000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    ASSERT_FALSE(outcome.hits.empty());
    EXPECT_EQ(outcome.hits[0].capability_name, "SendDigitalStream");
    EXPECT_EQ(outcome.hits[0].semantic_distance, 3);
}

TEST(ExactSummary, PrunesAtConceptGranularity) {
    // Both remote directories cache services over the *same* ontology URIs
    // (media + server), so a URI-level Bloom summary cannot tell them
    // apart. The exact summary can: the request's required output
    // media#VideoStream is subsumed by directory 6's provided media#Stream
    // but not by directory 12's media#SoundResource, so exactly one
    // forward goes out and the skipped peer is counted as a saved forward.
    auto kb = make_kb();
    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(13, 1), exact_config(), kb,
                             &registry);
    network.appoint_directory(0);
    network.appoint_directory(6);
    network.appoint_directory(12);
    network.start();
    network.run_for(100);

    network.publish_service(
        5, desc::serialize_service(
               one_output_service("StreamServer", th::media("Stream"))));
    network.publish_service(
        11, desc::serialize_service(
                one_output_service("SoundServer", th::media("SoundResource"))));
    network.run_for(5000);

    desc::Capability wanted;
    wanted.name = "WantVideoStream";
    wanted.kind = desc::CapabilityKind::kRequired;
    wanted.category_qname = th::server("DigitalServer");
    wanted.outputs.push_back(
        desc::Parameter{"out", th::media("VideoStream")});
    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(std::move(wanted));

    const auto before = network.traffic().per_type.count("fwd")
                            ? network.traffic().per_type.at("fwd")
                            : 0;
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(4000);
    const auto after = network.traffic().per_type.at("fwd");

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    ASSERT_FALSE(outcome.hits.empty());
    EXPECT_EQ(outcome.hits[0].service_name, "StreamServer");
    EXPECT_EQ(after - before, 1u) << "exact routing must not over-forward";
    EXPECT_GE(registry.counter_value("protocol.forwards_saved_exact"), 1u);
    EXPECT_GT(registry.counter_value("protocol.summary_bytes_sent"), 0u);
}

TEST(ExactSummary, CorruptImagesAreContainedAndCounted) {
    auto kb = make_kb();
    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 1), exact_config(), kb,
                             &registry);
    network.appoint_directory(0);
    network.appoint_directory(2);
    network.start();
    network.run_for(200);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    // Garbage snapshot and a truncated real snapshot: both must be
    // dropped and counted without disturbing the event loop.
    network.inject_summary_image(2, 0, /*delta=*/false, {0xDE, 0xAD, 0xBE});
    IntervalSummary real;
    real.retain("urn:x", 5, Role::kOutputs, 3);
    auto image = encode_summary(real);
    image.pop_back();
    network.inject_summary_image(2, 0, /*delta=*/false, std::move(image));
    // Garbage delta via the same containment path.
    network.inject_summary_image(2, 0, /*delta=*/true, {0x00});
    network.run_for(500);

    EXPECT_EQ(registry.counter_value("protocol.bloom_wire_rejected"), 3u);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(5000);
    EXPECT_TRUE(network.outcome(id).answered);
    EXPECT_TRUE(network.outcome(id).satisfied);
}

TEST(ExactSummary, DeltaGapTriggersSnapshotRepull) {
    auto kb = make_kb();
    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 1), exact_config(), kb,
                             &registry);
    network.appoint_directory(0);
    network.appoint_directory(2);
    network.start();
    network.run_for(200);
    network.publish_service(2,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(2000);  // node 0 now holds node 2's pushed summary

    // A well-formed delta against a version node 0 never saw: the gap must
    // be detected and repaired by re-pulling a snapshot, not applied.
    SummaryDelta bogus;
    bogus.base_version = 987654;
    bogus.new_version = 987655;
    const auto pulls_before =
        registry.counter_value("protocol.summary_pulls");
    network.inject_summary_image(2, 0, /*delta=*/true, encode_delta(bogus));
    network.run_for(2000);
    EXPECT_GE(registry.counter_value("protocol.summary_pulls"),
              pulls_before + 1);

    // After the repair the directory still routes: a request near node 0
    // reaches the service cached at directory 2.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(5000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
}

}  // namespace
}  // namespace sariadne::summary
