#include <gtest/gtest.h>

#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::xml {
namespace {

TEST(XmlParser, MinimalDocument) {
    const auto doc = parse("<root/>");
    EXPECT_EQ(doc.root.name(), "root");
    EXPECT_TRUE(doc.root.children().empty());
    EXPECT_TRUE(doc.root.text().empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
    const auto doc = parse(R"(<a x="1" y='two'/>)");
    EXPECT_EQ(doc.root.attribute_or("x", ""), "1");
    EXPECT_EQ(doc.root.attribute_or("y", ""), "two");
    EXPECT_FALSE(doc.root.attribute("z").has_value());
}

TEST(XmlParser, NestedChildrenInOrder) {
    const auto doc = parse("<a><b/><c/><b/></a>");
    ASSERT_EQ(doc.root.children().size(), 3u);
    EXPECT_EQ(doc.root.children()[0].name(), "b");
    EXPECT_EQ(doc.root.children()[1].name(), "c");
    EXPECT_EQ(doc.root.children_named("b").size(), 2u);
    EXPECT_NE(doc.root.child("c"), nullptr);
    EXPECT_EQ(doc.root.child("missing"), nullptr);
}

TEST(XmlParser, TextContentTrimmed) {
    const auto doc = parse("<a>  hello world\n </a>");
    EXPECT_EQ(doc.root.text(), "hello world");
}

TEST(XmlParser, PredefinedEntities) {
    const auto doc = parse("<a attr=\"&lt;&amp;&quot;\">&gt;&apos;</a>");
    EXPECT_EQ(doc.root.attribute_or("attr", ""), "<&\"");
    EXPECT_EQ(doc.root.text(), ">'");
}

TEST(XmlParser, NumericCharacterReferences) {
    const auto doc = parse("<a>&#65;&#x42;</a>");
    EXPECT_EQ(doc.root.text(), "AB");
}

TEST(XmlParser, Utf8CharacterReference) {
    const auto doc = parse("<a>&#233;</a>");  // é
    EXPECT_EQ(doc.root.text(), "\xC3\xA9");
}

TEST(XmlParser, CommentsSkippedEverywhere) {
    const auto doc = parse(
        "<!-- head --><a><!-- inner --><b/><!-- tail --></a><!-- post -->");
    EXPECT_EQ(doc.root.children().size(), 1u);
}

TEST(XmlParser, CdataPreserved) {
    const auto doc = parse("<a><![CDATA[<not><parsed>&amp;]]></a>");
    EXPECT_EQ(doc.root.text(), "<not><parsed>&amp;");
}

TEST(XmlParser, DeclarationAndProcessingInstructions) {
    const auto doc = parse("<?xml version=\"1.0\"?><?pi data?><a/>");
    EXPECT_EQ(doc.root.name(), "a");
}

TEST(XmlParser, MismatchedEndTagFails) {
    EXPECT_THROW(parse("<a></b>"), ParseError);
}

TEST(XmlParser, UnterminatedElementFails) {
    EXPECT_THROW(parse("<a><b></b>"), ParseError);
}

TEST(XmlParser, ContentAfterRootFails) {
    EXPECT_THROW(parse("<a/><b/>"), ParseError);
}

TEST(XmlParser, UnknownEntityFails) {
    EXPECT_THROW(parse("<a>&nope;</a>"), ParseError);
}

TEST(XmlParser, DoctypeRejected) {
    EXPECT_THROW(parse("<!DOCTYPE html><a/>"), ParseError);
}

TEST(XmlParser, ErrorCarriesPosition) {
    try {
        parse("<a>\n  <b>\n</a>");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(XmlParser, RequiredAccessorsThrow) {
    const auto doc = parse("<a><b/></a>");
    EXPECT_THROW(doc.root.required_attribute("missing"), LookupError);
    EXPECT_THROW(doc.root.required_child("missing"), LookupError);
    EXPECT_NO_THROW(doc.root.required_child("b"));
}

TEST(XmlWriter, RoundTripsStructure) {
    XmlNode root("service");
    root.set_attribute("name", "Media<&>");
    XmlNode child("capability");
    child.set_attribute("kind", "provided");
    child.set_text("some \"text\" & more");
    root.add_child(std::move(child));

    const std::string text = write(root);
    const auto doc = parse(text);
    EXPECT_EQ(doc.root.name(), "service");
    EXPECT_EQ(doc.root.attribute_or("name", ""), "Media<&>");
    ASSERT_EQ(doc.root.children().size(), 1u);
    EXPECT_EQ(doc.root.children()[0].text(), "some \"text\" & more");
}

TEST(XmlWriter, CompactModeParses) {
    XmlNode root("a");
    root.add_child(XmlNode("b"));
    WriteOptions options;
    options.pretty = false;
    options.declaration = false;
    const std::string text = write(root, options);
    EXPECT_EQ(text, "<a><b/></a>");
}

TEST(XmlWriter, EscapeHelpers) {
    EXPECT_EQ(escape_text("<a&b>"), "&lt;a&amp;b&gt;");
    EXPECT_EQ(escape_attribute("\"x\""), "&quot;x&quot;");
}

TEST(XmlNode, SubtreeSize) {
    const auto doc = parse("<a><b><c/></b><d/></a>");
    EXPECT_EQ(doc.root.subtree_size(), 4u);
}

TEST(XmlNode, SetAttributeOverwrites) {
    XmlNode node("a");
    node.set_attribute("k", "1");
    node.set_attribute("k", "2");
    EXPECT_EQ(node.attributes().size(), 1u);
    EXPECT_EQ(node.attribute_or("k", ""), "2");
}

}  // namespace
}  // namespace sariadne::xml
