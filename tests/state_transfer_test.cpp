// Directory state transfer: export/import bundles and the protocol's
// graceful handover (the paper's "a directory leaves and the elected one
// hosts its descriptions" scenario that Figure 7 times).
#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/topology.hpp"
#include "description/amigos_io.hpp"
#include "directory/state_transfer.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

class StateTransferFixture : public ::testing::Test {
protected:
    StateTransferFixture() : source_(kb_), target_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    encoding::KnowledgeBase kb_;
    directory::SemanticDirectory source_;
    directory::SemanticDirectory target_;
};

TEST_F(StateTransferFixture, ExportImportRoundTrip) {
    source_.publish(th::workstation_service());
    desc::ServiceDescription second = th::workstation_service();
    second.profile.service_name = "Workstation2";
    source_.publish(second);

    const std::string state = directory::export_state(source_);
    EXPECT_EQ(directory::import_state(target_, state), 2u);
    EXPECT_EQ(target_.service_count(), 2u);
    EXPECT_EQ(target_.capability_count(), 4u);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto result = target_.query(request);
    EXPECT_TRUE(result.fully_satisfied());
    EXPECT_EQ(result.per_capability[0].size(), 2u);  // both workstations
}

TEST_F(StateTransferFixture, EmptyDirectoryExportsEmptyState) {
    const std::string state = directory::export_state(source_);
    EXPECT_EQ(directory::import_state(target_, state), 0u);
    EXPECT_EQ(target_.service_count(), 0u);
}

TEST_F(StateTransferFixture, ImportReplacesSameNameServices) {
    target_.publish(th::workstation_service());
    source_.publish(th::workstation_service());
    (void)directory::import_state(target_, directory::export_state(source_));
    EXPECT_EQ(target_.service_count(), 1u);  // replaced, not duplicated
}

TEST_F(StateTransferFixture, ImportPreservesGroundingAndProfile) {
    source_.publish(th::workstation_service());
    (void)directory::import_state(target_, directory::export_state(source_));
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto result = target_.query(request);
    ASSERT_FALSE(result.per_capability[0].empty());
    const auto* service = target_.service(result.per_capability[0][0].service);
    ASSERT_NE(service, nullptr);
    EXPECT_EQ(service->grounding.address, "http://workstation.local/media");
    EXPECT_EQ(service->middleware, "WS");
}

TEST_F(StateTransferFixture, MalformedStateRejected) {
    EXPECT_THROW((void)directory::import_state(target_, "<wrong/>"), ParseError);
    EXPECT_THROW((void)directory::import_state(target_, "garbage"), ParseError);
    EXPECT_EQ(target_.service_count(), 0u);
}

// --- protocol-level handover -----------------------------------------------

encoding::KnowledgeBase protocol_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

ariadne::ProtocolConfig handover_config() {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1200;
    config.election_wait_ms = 30;
    return config;
}

TEST(Handover, ResignationTransfersContentToPeerDirectory) {
    auto kb = protocol_kb();
    ariadne::DiscoveryNetwork network(net::Topology::grid(9, 1),
                                      handover_config(), kb);
    network.appoint_directory(1);
    network.appoint_directory(7);
    network.start();
    network.run_for(200);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(1000);

    // Directory 1 (holding the description) resigns gracefully.
    network.resign_directory(1);
    network.run_for(2000);
    EXPECT_FALSE(network.is_directory(1));

    // The content must now be answerable by directory 7, even for a client
    // right next to the resigned node.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(0, desc::serialize_request(request));
    network.run_for(5000);
    const auto& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
}

TEST(Handover, LastDirectoryElectsSuccessorAndHandsOver) {
    auto kb = protocol_kb();
    ariadne::DiscoveryNetwork network(net::Topology::grid(3, 3),
                                      handover_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(200);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(1000);

    network.resign_directory(4);
    network.run_for(8000);  // election + handover

    const auto dirs = network.directories();
    ASSERT_FALSE(dirs.empty());
    EXPECT_FALSE(network.is_directory(4));

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(5000);
    const auto& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied)
        << "the successor directory should have inherited the description";
}

TEST(Handover, ResigningNonDirectoryIsANoOp) {
    auto kb = protocol_kb();
    ariadne::DiscoveryNetwork network(net::Topology::grid(2, 2),
                                      handover_config(), kb);
    network.appoint_directory(0);
    network.start();
    EXPECT_NO_THROW(network.resign_directory(3));
    EXPECT_TRUE(network.is_directory(0));
}

}  // namespace
}  // namespace sariadne
