// Self-test of the sariadne-analyze pass library: each pass is driven
// against committed fixture mini-repos under tests/fixtures/analyze/
// with seeded violations (positive cases assert exact file:line) and
// clean/suppressed twins (negative cases assert zero findings), plus the
// static-vs-runtime lock-rank cross-check and a zero-findings gate over
// the real repo. The fixture trees live under a directory named
// "fixtures", which load_repo skips when scanning the real repo — the
// seeded violations never count against HEAD.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/callgraph.hpp"
#include "analyze/model.hpp"
#include "analyze/passes.hpp"

namespace analyze = sariadne::analyze;

namespace {

analyze::Repo fixture_repo(const std::string& name) {
    return analyze::load_repo(std::string(SARIADNE_FIXTURE_DIR) + "/" + name);
}

std::map<std::string, int> count_by_rule(
    const std::vector<analyze::Finding>& findings) {
    std::map<std::string, int> counts;
    for (const analyze::Finding& f : findings) ++counts[f.rule];
    return counts;
}

bool has_finding(const std::vector<analyze::Finding>& findings,
                 const std::string& file, std::size_t line,
                 const std::string& rule) {
    return std::any_of(findings.begin(), findings.end(),
                       [&](const analyze::Finding& f) {
                           return f.file == file && f.line == line &&
                                  f.rule == rule;
                       });
}

std::string dump(const std::vector<analyze::Finding>& findings) {
    std::string out;
    for (const analyze::Finding& f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
               f.message + "\n";
    }
    return out;
}

const analyze::Repo& real_repo() {
    static const analyze::Repo repo = analyze::load_repo(SARIADNE_REPO_ROOT);
    return repo;
}

const analyze::FunctionIndex& real_index() {
    static const analyze::FunctionIndex index =
        analyze::build_function_index(real_repo());
    return index;
}

// --- layer pass -----------------------------------------------------------

TEST(LayerPass, FlagsUpwardDuplicateAndCyclicIncludes) {
    const analyze::Repo repo = fixture_repo("layering_bad");
    const std::vector<analyze::Finding> findings =
        analyze::run_layer_pass(repo);
    const std::map<std::string, int> counts = count_by_rule(findings);
    EXPECT_EQ(counts.at("layer-order"), 2) << dump(findings);
    EXPECT_EQ(counts.at("include-duplicate"), 1) << dump(findings);
    EXPECT_EQ(counts.at("include-cycle"), 1) << dump(findings);
    // The upward include is reported at its exact line.
    EXPECT_TRUE(has_finding(findings, "src/support/helper.hpp", 2,
                            "layer-order"))
        << dump(findings);
    EXPECT_TRUE(has_finding(findings, "src/support/helper.hpp", 3,
                            "include-duplicate"))
        << dump(findings);
}

TEST(LayerPass, DownwardAndSuppressedIncludesAreClean) {
    const analyze::Repo repo = fixture_repo("layering_good");
    const std::vector<analyze::Finding> findings =
        analyze::run_layer_pass(repo);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

// --- lock pass ------------------------------------------------------------

TEST(LockPass, FlagsInvertedPairDirectlyAndThroughACall) {
    const analyze::Repo repo = fixture_repo("lockorder_bad");
    const analyze::FunctionIndex index = analyze::build_function_index(repo);
    const std::vector<analyze::Finding> findings =
        analyze::run_lock_pass(repo, index);
    ASSERT_EQ(findings.size(), 2u) << dump(findings);
    // Direct inversion: kTaxonomyCache (60) held, kDagShard (40) acquired.
    EXPECT_TRUE(has_finding(findings, "src/directory/shard.cpp", 16,
                            "lock-order"))
        << dump(findings);
    // Same inversion one call deep: the finding lands on the call site.
    EXPECT_TRUE(has_finding(findings, "src/directory/shard.cpp", 7,
                            "lock-order"))
        << dump(findings);
}

TEST(LockPass, AscendingAndSuppressedAcquisitionsAreClean) {
    const analyze::Repo repo = fixture_repo("lockorder_good");
    const analyze::FunctionIndex index = analyze::build_function_index(repo);
    const std::vector<analyze::Finding> findings =
        analyze::run_lock_pass(repo, index);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(LockPass, StaticRankTableMatchesRuntimeConstants) {
    std::vector<std::pair<std::string, int>> runtime =
        analyze::parse_runtime_lock_ranks(real_repo());
    std::vector<std::pair<std::string, int>> expected =
        analyze::static_lock_ranks();
    ASSERT_FALSE(runtime.empty())
        << "src/support/lock_rank.hpp not found or unparseable";
    std::sort(runtime.begin(), runtime.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(runtime, expected)
        << "update static_lock_ranks() in tools/analyze/pass_locks.cpp "
           "together with enum class LockRank";
}

// --- hot-path pass --------------------------------------------------------

TEST(HotPathPass, FlagsAllocationTwoCallsDeepAndDirectThrow) {
    const analyze::Repo repo = fixture_repo("hotpath_bad");
    const analyze::FunctionIndex index = analyze::build_function_index(repo);
    const std::vector<analyze::Finding> findings =
        analyze::run_hotpath_pass(repo, index);
    ASSERT_EQ(findings.size(), 2u) << dump(findings);
    // match_kernel -> deep_helper -> deeper_helper allocates a std::string;
    // the finding lands on the allocation, two calls below the entry.
    EXPECT_TRUE(has_finding(findings, "src/matching/helpers.hpp", 7,
                            "hot-path-flow"))
        << dump(findings);
    EXPECT_TRUE(has_finding(findings, "src/matching/kernel.hpp", 12,
                            "hot-path-flow"))
        << dump(findings);
}

TEST(HotPathPass, ReaderLocksAndSuppressedAllocationsAreClean) {
    const analyze::Repo repo = fixture_repo("hotpath_good");
    const analyze::FunctionIndex index = analyze::build_function_index(repo);
    const std::vector<analyze::Finding> findings =
        analyze::run_hotpath_pass(repo, index);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

// --- rules pass -----------------------------------------------------------

TEST(RulesPass, FlagsDecodersMissingNoexcept) {
    const analyze::Repo repo = fixture_repo("noexcept_bad");
    const std::vector<analyze::Finding> findings =
        analyze::run_rules_pass(repo);
    ASSERT_EQ(findings.size(), 2u) << dump(findings);
    // Both the Result-returning and the optional-returning decoder.
    EXPECT_TRUE(has_finding(findings, "src/ariadne/codec.hpp", 17,
                            "wire-decode-noexcept"))
        << dump(findings);
    EXPECT_TRUE(has_finding(findings, "src/ariadne/codec.hpp", 18,
                            "wire-decode-noexcept"))
        << dump(findings);
}

TEST(RulesPass, NoexceptMarkedDecodeSurfaceIsClean) {
    const analyze::Repo repo = fixture_repo("noexcept_good");
    const std::vector<analyze::Finding> findings =
        analyze::run_rules_pass(repo);
    EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(RulesPass, LineNumbersSurviveBlockCommentsAndStringSplices) {
    // Regression pin for the lint_sariadne line-number bug: a multi-line
    // block comment and a backslash-newline splice inside a string literal
    // precede the violation; the finding must still land on its raw line.
    const analyze::Repo repo = fixture_repo("linenum");
    const std::vector<analyze::Finding> findings =
        analyze::run_rules_pass(repo);
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_TRUE(has_finding(findings, "src/support/tricky.hpp", 11,
                            "naked-mutex"))
        << dump(findings);
}

TEST(RulesPass, FlagsMetricNameLiterals) {
    const analyze::Repo repo = fixture_repo("rules_bad");
    const std::vector<analyze::Finding> findings =
        analyze::run_rules_pass(repo);
    ASSERT_EQ(findings.size(), 1u) << dump(findings);
    EXPECT_TRUE(has_finding(findings, "src/obs/use.cpp", 4, "metric-name"))
        << dump(findings);
}

// --- whole-repo gate ------------------------------------------------------

TEST(Repo, FixtureTreesAreExcludedFromTheRealScan) {
    EXPECT_EQ(real_repo().find("tests/fixtures/analyze/linenum/src/support/"
                               "tricky.hpp"),
              nullptr);
    ASSERT_NE(real_repo().find("src/support/lock_rank.hpp"), nullptr);
}

TEST(Repo, AllPassesCleanAtHead) {
    EXPECT_TRUE(analyze::run_rules_pass(real_repo()).empty())
        << dump(analyze::run_rules_pass(real_repo()));
    EXPECT_TRUE(analyze::run_layer_pass(real_repo()).empty())
        << dump(analyze::run_layer_pass(real_repo()));
    EXPECT_TRUE(analyze::run_lock_pass(real_repo(), real_index()).empty())
        << dump(analyze::run_lock_pass(real_repo(), real_index()));
    EXPECT_TRUE(analyze::run_hotpath_pass(real_repo(), real_index()).empty())
        << dump(analyze::run_hotpath_pass(real_repo(), real_index()));
}

}  // namespace
