// Concurrency stress coverage for the sharded SemanticDirectory: N
// publisher threads and M query threads over shared ontologies, asserting
// no lost services and distance-correct results against the flat
// single-threaded reference. Run under ThreadSanitizer in CI
// (SARIADNE_SANITIZE=thread).
#include <atomic>
#include <cstddef>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/discovery_engine.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "support/thread_pool.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::directory {
namespace {

namespace th = sariadne::testing;

struct StressWorld {
    encoding::KnowledgeBase kb;  // must precede workload: make_universe fills it
    workload::ServiceWorkload workload;

    explicit StressWorld(std::size_t ontologies, unsigned seed)
        : workload(make_universe(ontologies, seed, kb)) {}

private:
    static std::vector<onto::Ontology> make_universe(std::size_t ontologies,
                                                     unsigned seed,
                                                     encoding::KnowledgeBase& kb) {
        workload::OntologyGenConfig config;
        config.class_count = 25;
        auto universe = workload::generate_universe(ontologies, config, seed);
        for (const auto& o : universe) kb.register_ontology(o);
        return universe;
    }
};

TEST(Concurrency, PublishersAndQueriersDontLoseServicesOrCorrectness) {
    StressWorld world(5, 2026);
    SemanticDirectory directory(world.kb);

    // Seed population the query threads race against — these services are
    // never replaced, so every concurrent query must stay satisfied.
    constexpr std::size_t kSeeded = 40;
    for (std::size_t i = 0; i < kSeeded; ++i) {
        directory.publish(world.workload.service(i));
    }

    constexpr std::size_t kPublishers = 4;
    constexpr std::size_t kPerPublisher = 20;
    constexpr std::size_t kQueriers = 4;
    constexpr std::size_t kQueriesEach = 150;

    std::atomic<std::size_t> unsatisfied{0};
    std::atomic<std::size_t> distance_mismatches{0};

    // Single-threaded reference distances for the seeded population,
    // computed before the churn starts.
    std::vector<int> expected_best(kSeeded);
    for (std::size_t i = 0; i < kSeeded; ++i) {
        const auto result =
            directory.query(world.workload.matching_request(i));
        ASSERT_TRUE(result.fully_satisfied()) << "seed request " << i;
        expected_best[i] = result.per_capability[0][0].semantic_distance;
    }

    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < kPublishers; ++p) {
        threads.emplace_back([&, p] {
            for (std::size_t j = 0; j < kPerPublisher; ++j) {
                const std::size_t index = kSeeded + p * kPerPublisher + j;
                directory.publish(world.workload.service(index));
            }
        });
    }
    for (std::size_t q = 0; q < kQueriers; ++q) {
        threads.emplace_back([&, q] {
            for (std::size_t j = 0; j < kQueriesEach; ++j) {
                const std::size_t i = (q * 31 + j) % kSeeded;
                const auto result =
                    directory.query(world.workload.matching_request(i));
                if (!result.fully_satisfied()) {
                    unsatisfied.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                // Concurrent publishes can only add closer providers, never
                // push the best admissible distance up.
                if (result.per_capability[0][0].semantic_distance >
                    expected_best[i]) {
                    distance_mismatches.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(unsatisfied.load(), 0u);
    EXPECT_EQ(distance_mismatches.load(), 0u);

    // No lost services: every publish survived.
    EXPECT_EQ(directory.service_count(), kSeeded + kPublishers * kPerPublisher);

    // Distance correctness after the dust settles: the sharded DAG answer
    // agrees with a flat linear-scan directory over the same content.
    FlatDirectory flat(world.kb);
    const std::size_t total = kSeeded + kPublishers * kPerPublisher;
    for (std::size_t i = 0; i < total; ++i) {
        flat.publish(world.workload.service(i));
    }
    for (std::size_t i = 0; i < total; i += 7) {
        const auto resolved = desc::resolve_request(
            world.workload.matching_request(i), world.kb.registry());
        const auto from_dag = directory.query_resolved(resolved);
        MatchStats stats;
        QueryTiming timing;
        const auto from_flat = flat.query(resolved, stats, timing);
        ASSERT_EQ(from_dag.per_capability.size(), from_flat.size());
        for (std::size_t c = 0; c < from_flat.size(); ++c) {
            ASSERT_FALSE(from_dag.per_capability[c].empty()) << "request " << i;
            ASSERT_FALSE(from_flat[c].empty()) << "request " << i;
            EXPECT_EQ(from_dag.per_capability[c][0].semantic_distance,
                      from_flat[c][0].semantic_distance)
                << "request " << i << " capability " << c;
        }
    }
}

TEST(Concurrency, ReuseApiArenaLifecycleIsSafeUnderPublishRemoveChurn) {
    // The zero-allocation query path: each querier thread holds ONE
    // QueryResult and funnels every query through the buffer-reusing
    // overload, so its thread-local arena is reset and re-bumped thousands
    // of times while publishers add services and removers retract them.
    // Under TSan this pins down (a) that arena scratch never crosses
    // threads, (b) that hits materialized into the caller's QueryResult
    // are deep copies that survive both the next arena reset and the
    // removal of the service they name, and (c) that a warmed-up thread
    // stops growing its arena (scratch_allocs settles to 0) even as the
    // directory churns underneath it.
    StressWorld world(5, 4031);
    SemanticDirectory directory(world.kb);

    constexpr std::size_t kSeeded = 40;
    for (std::size_t i = 0; i < kSeeded; ++i) {
        directory.publish(world.workload.service(i));
    }

    // Churn population: published and removed repeatedly while queries run.
    constexpr std::size_t kChurn = 30;
    constexpr std::size_t kQueriers = 4;
    constexpr std::size_t kQueriesEach = 300;

    std::vector<std::vector<desc::ResolvedCapability>> requests;
    for (std::size_t i = 0; i < kSeeded; ++i) {
        requests.push_back(desc::resolve_request(
            world.workload.matching_request(i), world.kb));
    }

    std::atomic<std::size_t> unsatisfied{0};
    std::atomic<std::size_t> stale_copies{0};
    std::atomic<std::uint64_t> tail_scratch_allocs{0};
    std::atomic<bool> stop{false};

    std::vector<std::thread> threads;
    threads.emplace_back([&] {  // publish/remove churn
        for (int round = 0; round < 12; ++round) {
            std::vector<ServiceId> ids;
            for (std::size_t j = 0; j < kChurn; ++j) {
                ids.push_back(
                    directory.publish(world.workload.service(kSeeded + j)).id);
            }
            for (const ServiceId id : ids) directory.remove(id);
        }
        stop.store(true, std::memory_order_release);
    });
    for (std::size_t q = 0; q < kQueriers; ++q) {
        threads.emplace_back([&, q] {
            QueryResult reused;  // one buffer for the thread's lifetime
            std::vector<MatchHit> snapshot;
            std::uint64_t tail = 0;
            for (std::size_t j = 0; j < kQueriesEach; ++j) {
                const std::size_t i = (q * 17 + j) % kSeeded;
                directory.query_resolved(requests[i], {}, reused);
                if (!reused.fully_satisfied()) {
                    unsatisfied.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                // Copy a hit out, run another query (arena reset + rebump),
                // then check the copy — catches any materialization that
                // aliases arena memory instead of deep-copying.
                snapshot.assign(reused.per_capability[0].begin(),
                                reused.per_capability[0].end());
                const std::string name = snapshot[0].service_name;
                const std::string cap = snapshot[0].capability_name;
                directory.query_resolved(requests[(i + 1) % kSeeded], {},
                                         reused);
                if (snapshot[0].service_name != name ||
                    snapshot[0].capability_name != cap) {
                    stale_copies.fetch_add(1, std::memory_order_relaxed);
                }
                // Second half of the run: the arena footprint must have
                // stabilized regardless of concurrent churn.
                if (j >= kQueriesEach / 2) {
                    tail += reused.stats.scratch_allocs;
                }
            }
            tail_scratch_allocs.fetch_add(tail, std::memory_order_relaxed);
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(unsatisfied.load(), 0u);
    EXPECT_EQ(stale_copies.load(), 0u);
    EXPECT_EQ(tail_scratch_allocs.load(), 0u);
    EXPECT_TRUE(stop.load());
    EXPECT_EQ(directory.service_count(), kSeeded);  // churn fully retracted
}

TEST(Concurrency, FastPathQueriesAreRaceFreeAndCorrectUnderChurn) {
    // Fast-path variant of the stress test above: the request capabilities
    // are resolved through the KnowledgeBase overload so they carry fresh
    // CodeSignatures, and several query threads share those *same* signed
    // objects concurrently while publishers churn. The batched kernel and
    // the quick-reject summaries only ever read the signatures, so this
    // must be TSan-clean and distance-identical to the seeded reference.
    StressWorld world(4, 4242);
    SemanticDirectory directory(world.kb);

    constexpr std::size_t kSeeded = 32;
    for (std::size_t i = 0; i < kSeeded; ++i) {
        directory.publish(world.workload.service(i));
    }

    // Pre-signed shared requests + single-threaded reference distances.
    std::vector<std::vector<desc::ResolvedCapability>> signed_requests;
    std::vector<int> expected_best(kSeeded);
    signed_requests.reserve(kSeeded);
    for (std::size_t i = 0; i < kSeeded; ++i) {
        signed_requests.push_back(desc::resolve_request(
            world.workload.matching_request(i), world.kb));
        const auto result = directory.query_resolved(signed_requests.back());
        ASSERT_TRUE(result.fully_satisfied()) << "seed request " << i;
        expected_best[i] = result.per_capability[0][0].semantic_distance;
    }

    constexpr std::size_t kPublishers = 3;
    constexpr std::size_t kPerPublisher = 16;
    constexpr std::size_t kQueriers = 4;
    constexpr std::size_t kQueriesEach = 120;

    std::atomic<std::size_t> unsatisfied{0};
    std::atomic<std::size_t> distance_mismatches{0};

    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < kPublishers; ++p) {
        threads.emplace_back([&, p] {
            for (std::size_t j = 0; j < kPerPublisher; ++j) {
                const std::size_t index = kSeeded + p * kPerPublisher + j;
                directory.publish(world.workload.service(index));
            }
        });
    }
    for (std::size_t q = 0; q < kQueriers; ++q) {
        threads.emplace_back([&, q] {
            for (std::size_t j = 0; j < kQueriesEach; ++j) {
                const std::size_t i = (q * 13 + j) % kSeeded;
                const auto result =
                    directory.query_resolved(signed_requests[i]);
                if (!result.fully_satisfied()) {
                    unsatisfied.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                if (result.per_capability[0][0].semantic_distance >
                    expected_best[i]) {
                    distance_mismatches.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(unsatisfied.load(), 0u);
    EXPECT_EQ(distance_mismatches.load(), 0u);
    EXPECT_EQ(directory.service_count(), kSeeded + kPublishers * kPerPublisher);

    // The fast path actually engaged: quick-rejects are part of the
    // lifetime stats only when signatures were live during the sweep.
    const MatchStats lifetime = directory.lifetime_stats();
    EXPECT_GT(lifetime.quick_rejects, 0u);
}

TEST(Concurrency, ConcurrentRemovalsKeepTheTableConsistent) {
    StressWorld world(3, 77);
    SemanticDirectory directory(world.kb);

    constexpr std::size_t kServices = 40;
    std::vector<ServiceId> ids;
    ids.reserve(kServices);
    for (std::size_t i = 0; i < kServices; ++i) {
        ids.push_back(directory.publish(world.workload.service(i)).id);
    }

    std::vector<std::thread> threads;
    // Two removers split the even-indexed services between them; two
    // queriers hammer the surviving odd-indexed population.
    for (std::size_t r = 0; r < 2; ++r) {
        threads.emplace_back([&, r] {
            for (std::size_t i = r * 2; i < kServices; i += 4) {
                EXPECT_TRUE(directory.remove(ids[i]));
            }
        });
    }
    std::atomic<std::size_t> unsatisfied{0};
    for (std::size_t q = 0; q < 2; ++q) {
        threads.emplace_back([&] {
            for (std::size_t j = 0; j < 100; ++j) {
                const std::size_t i = 1 + 2 * (j % (kServices / 2));
                const auto result =
                    directory.query(world.workload.matching_request(i));
                if (!result.fully_satisfied()) {
                    unsatisfied.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();

    EXPECT_EQ(unsatisfied.load(), 0u);
    EXPECT_EQ(directory.service_count(), kServices / 2);
    // Removing an already-removed handle reports false, never crashes.
    EXPECT_FALSE(directory.remove(ids[0]));
}

TEST(Concurrency, ParallelEngineDiscoverIsSafeUnderConcurrentPublish) {
    DiscoveryEngine engine;
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    engine.publish(th::workstation_service());

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    desc::Capability second = th::get_video_stream();
    second.name = "SecondNeed";
    request.capabilities.push_back(second);

    QueryOptions options;
    options.parallel = true;

    std::atomic<bool> stop{false};
    std::thread publisher([&] {
        int n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            desc::ServiceDescription service = th::workstation_service();
            service.profile.service_name = "Churn" + std::to_string(n++ % 5);
            engine.publish(std::move(service));
        }
    });
    for (int i = 0; i < 50; ++i) {
        const auto results = engine.discover(request, options);
        ASSERT_EQ(results.size(), 2u);
        EXPECT_FALSE(results[0].empty());
        EXPECT_FALSE(results[1].empty());
    }
    stop.store(true, std::memory_order_relaxed);
    publisher.join();
}

TEST(ThreadPool, RunsEverySubmittedTaskAndReturnsResults) {
    support::ThreadPool pool(4);
    EXPECT_EQ(pool.worker_count(), 4u);
    std::vector<std::future<int>> futures;
    futures.reserve(100);
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([i] { return i * i; }));
    }
    long long sum = 0;
    for (auto& future : futures) sum += future.get();
    long long expected = 0;
    for (int i = 0; i < 100; ++i) expected += static_cast<long long>(i) * i;
    EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
    support::ThreadPool pool(2);
    auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)future.get(), std::runtime_error);
}

}  // namespace
}  // namespace sariadne::directory
