// Lock-rank checker tests — prove the debug-build deadlock checker
// detects hierarchy inversions deterministically, and pin the structured
// ContractViolation fields the checker reports. Uses BasicRankedMutex<true>
// directly so the tests exercise the checking path in every build type
// (RankedMutex compiles the checks out under NDEBUG).
#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "support/lock_rank.hpp"

namespace sariadne::support {
namespace {

using CheckedMutex = BasicRankedMutex<true>;
using CheckedSharedMutex = BasicRankedSharedMutex<true>;

TEST(LockRank, AscendingAcquisitionSucceeds) {
    CheckedMutex pool(LockRank::kEnginePool);
    CheckedMutex summary(LockRank::kDirectorySummary);
    CheckedMutex metrics(LockRank::kMetricsRegistry);

    std::lock_guard a(pool);
    std::lock_guard b(summary);
    std::lock_guard c(metrics);
    EXPECT_EQ(lockrank_detail::held_count(), 3u);
}

TEST(LockRank, InversionThrowsWithStructuredFields) {
    CheckedMutex pool(LockRank::kEnginePool);
    CheckedMutex summary(LockRank::kDirectorySummary);

    // A→B is the sanctioned order; B→A must be rejected at the A
    // acquisition site with a precise diagnosis.
    std::lock_guard outer(summary);
    try {
        pool.lock();
        FAIL() << "lock-order inversion was not detected";
    } catch (const ContractViolation& violation) {
        EXPECT_EQ(violation.kind(), ContractKind::kLockRank);
        EXPECT_EQ(violation.expression(),
                  "acquire engine-pool while holding directory-summary "
                  "(ranks must be strictly ascending)");
        EXPECT_NE(std::string(violation.file()).find("lockrank_test.cpp"),
                  std::string::npos);
        EXPECT_GT(violation.line(), 0);
        EXPECT_NE(std::string(violation.what()).find("lock-rank"),
                  std::string::npos);
    }
    // The failed acquisition must not leave a phantom entry behind.
    EXPECT_EQ(lockrank_detail::held_count(), 1u);
}

TEST(LockRank, ReverseOrderOnFreshThreadStillCaught) {
    // The held stack is thread-local: a different thread performing the
    // same inversion is caught independently.
    CheckedMutex dag(LockRank::kDagShard);
    CheckedMutex kb(LockRank::kKnowledgeBaseTables);

    bool caught = false;
    std::thread worker([&] {
        std::lock_guard outer(kb);
        try {
            dag.lock();
        } catch (const ContractViolation& violation) {
            caught = violation.kind() == ContractKind::kLockRank;
        }
    });
    worker.join();
    EXPECT_TRUE(caught);
}

TEST(LockRank, SameRankNestingForbidden) {
    // DagIndex locks one shard at a time; two kDagShard locks nested on
    // one thread would deadlock against the opposite nesting.
    CheckedSharedMutex shard_a(LockRank::kDagShard);
    CheckedSharedMutex shard_b(LockRank::kDagShard);

    std::shared_lock outer(shard_a);
    EXPECT_THROW(shard_b.lock_shared(), ContractViolation);
}

TEST(LockRank, TryLockParticipatesInHierarchy) {
    CheckedMutex pool(LockRank::kEnginePool);
    CheckedMutex summary(LockRank::kDirectorySummary);

    std::lock_guard outer(summary);
    // An inverted try_lock is an inverted blocking lock waiting to
    // happen (the try-then-block pattern), so it is rejected too.
    EXPECT_THROW((void)pool.try_lock(), ContractViolation);
}

TEST(LockRank, SharedAndExclusiveShareOneHierarchy) {
    CheckedSharedMutex kb(LockRank::kKnowledgeBaseTables);
    CheckedMutex summary(LockRank::kDirectorySummary);

    std::shared_lock reader(kb);
    EXPECT_THROW(summary.lock(), ContractViolation);
}

TEST(LockRank, OutOfLifoReleaseTolerated) {
    CheckedMutex pool(LockRank::kEnginePool);
    CheckedMutex summary(LockRank::kDirectorySummary);
    CheckedMutex metrics(LockRank::kMetricsRegistry);

    std::unique_lock a(pool);
    std::unique_lock b(summary);
    a.unlock();  // release the outer lock first (unique_lock juggling)
    EXPECT_EQ(lockrank_detail::held_count(), 1u);

    // The innermost *held* rank still governs: metrics (70) > summary
    // (20) is fine, pool (10) is not.
    std::lock_guard c(metrics);
    EXPECT_THROW(pool.lock(), ContractViolation);
}

TEST(LockRank, RecoveryAfterViolation) {
    CheckedMutex pool(LockRank::kEnginePool);
    CheckedMutex summary(LockRank::kDirectorySummary);

    {
        std::lock_guard outer(summary);
        EXPECT_THROW(pool.lock(), ContractViolation);
    }
    // All locks released; the sanctioned order works again.
    std::lock_guard a(pool);
    std::lock_guard b(summary);
    EXPECT_EQ(lockrank_detail::held_count(), 2u);
}

TEST(LockRank, ReleaseBuildAliasIsConfiguredConsistently) {
    // RankedMutex's checking mode follows SARIADNE_LOCKRANK_CHECKS; this
    // pins that the alias and the flag agree in whatever build runs the
    // suite (the TSan CI job forces checks on via -DSARIADNE_LOCKRANK=ON).
    constexpr bool alias_checked =
        std::is_same_v<RankedMutex, BasicRankedMutex<true>>;
    EXPECT_EQ(alias_checked, kLockRankChecksEnabled);

    RankedMutex mutex(LockRank::kDirectoryServices);
    std::lock_guard lock(mutex);
    EXPECT_EQ(mutex.rank(), LockRank::kDirectoryServices);
}

}  // namespace
}  // namespace sariadne::support
