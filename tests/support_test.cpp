#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/arena.hpp"
#include "support/contracts.hpp"
#include "support/flat_set.hpp"
#include "support/hash.hpp"
#include "support/interning.hpp"
#include "support/rng.hpp"

namespace sariadne {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int differences = 0;
    for (int i = 0; i < 16; ++i) {
        if (a() != b()) ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.below(bound), bound);
        }
    }
}

TEST(Rng, BelowOneIsAlwaysZero) {
    Rng rng(3);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(11);
    double sum = 0;
    constexpr int kSamples = 10000;
    for (int i = 0; i < kSamples; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng rng(13);
    double sum = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / kSamples, 5.0, 0.25);
}

TEST(Rng, ShufflePermutes) {
    Rng rng(17);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled.begin(), shuffled.end());
    EXPECT_TRUE(std::is_permutation(values.begin(), values.end(),
                                    shuffled.begin()));
}

TEST(Hash, Fnv1aStability) {
    // Known FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(Hash, Murmur3DiffersByInput) {
    const auto a = murmur3_128("hello");
    const auto b = murmur3_128("hellp");
    EXPECT_TRUE(a.h1 != b.h1 || a.h2 != b.h2);
}

TEST(Hash, Murmur3SeedMatters) {
    const auto a = murmur3_128("hello", 1);
    const auto b = murmur3_128("hello", 2);
    EXPECT_TRUE(a.h1 != b.h1 || a.h2 != b.h2);
}

TEST(Hash, Murmur3HandlesAllTailLengths) {
    // Exercise every tail-length branch (0..15 bytes past a block).
    std::set<std::uint64_t> seen;
    std::string text;
    for (int len = 0; len < 48; ++len) {
        seen.insert(murmur3_128(text).h1);
        text += static_cast<char>('a' + len % 26);
    }
    EXPECT_EQ(seen.size(), 48u);
}

TEST(Hash, CombineUnorderedIsOrderIndependent) {
    const std::uint64_t a = fnv1a64("x");
    const std::uint64_t b = fnv1a64("y");
    const std::uint64_t c = fnv1a64("z");
    std::uint64_t acc1 = 0;
    acc1 = combine_unordered(acc1, a);
    acc1 = combine_unordered(acc1, b);
    acc1 = combine_unordered(acc1, c);
    std::uint64_t acc2 = 0;
    acc2 = combine_unordered(acc2, c);
    acc2 = combine_unordered(acc2, a);
    acc2 = combine_unordered(acc2, b);
    EXPECT_EQ(acc1, acc2);
}

TEST(StringPool, InternDeduplicates) {
    StringPool pool;
    const Symbol a = pool.intern("hello");
    const Symbol b = pool.intern("hello");
    const Symbol c = pool.intern("world");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.text(a), "hello");
    EXPECT_EQ(pool.text(c), "world");
}

TEST(StringPool, FindWithoutInserting) {
    StringPool pool;
    EXPECT_FALSE(pool.find("missing").valid());
    pool.intern("present");
    EXPECT_TRUE(pool.find("present").valid());
    EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPool, SurvivesGrowth) {
    // Many SSO-sized strings force rehash/growth; views must stay valid.
    StringPool pool;
    std::vector<Symbol> symbols;
    for (int i = 0; i < 2000; ++i) {
        symbols.push_back(pool.intern("s" + std::to_string(i)));
    }
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(pool.text(symbols[i]), "s" + std::to_string(i));
        EXPECT_EQ(pool.intern("s" + std::to_string(i)), symbols[i]);
    }
}

TEST(FlatSet, InsertAndContains) {
    FlatSet<int> set;
    EXPECT_TRUE(set.insert(3));
    EXPECT_TRUE(set.insert(1));
    EXPECT_FALSE(set.insert(3));
    EXPECT_TRUE(set.contains(1));
    EXPECT_FALSE(set.contains(2));
    EXPECT_EQ(set.size(), 2u);
}

TEST(FlatSet, NormalizesInitializerList) {
    const FlatSet<int> set{5, 1, 3, 1, 5};
    const std::vector<int> expected{1, 3, 5};
    EXPECT_EQ(set.items(), expected);
}

TEST(FlatSet, SubsetAndIntersection) {
    const FlatSet<int> small{1, 3};
    const FlatSet<int> big{1, 2, 3, 4};
    const FlatSet<int> other{7, 8};
    EXPECT_TRUE(small.subset_of(big));
    EXPECT_FALSE(big.subset_of(small));
    EXPECT_TRUE(small.intersects(big));
    EXPECT_FALSE(small.intersects(other));
    EXPECT_TRUE(FlatSet<int>{}.subset_of(small));
    EXPECT_FALSE(FlatSet<int>{}.intersects(small));
}

TEST(FlatSet, Union) {
    const FlatSet<int> a{1, 3};
    const FlatSet<int> b{2, 3};
    const FlatSet<int> u = a.united_with(b);
    const std::vector<int> expected{1, 2, 3};
    EXPECT_EQ(u.items(), expected);
}

TEST(FlatSet, HashOrderIndependent) {
    const FlatSet<int> a{1, 2, 3};
    const FlatSet<int> b{3, 2, 1};
    const auto project = [](int v) { return static_cast<std::uint64_t>(v); };
    EXPECT_EQ(hash_set(a, project), hash_set(b, project));
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
    support::Arena arena;
    auto* a = arena.alloc_array<std::uint64_t>(4);
    auto* b = arena.alloc_array<char>(3);
    auto* c = arena.alloc_array<std::uint32_t>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::uint64_t),
              0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(std::uint32_t),
              0u);
    // Writes through one allocation never alias another.
    for (int i = 0; i < 4; ++i) a[i] = 0xA1A1A1A1A1A1A1A1ULL;
    b[0] = 'x';
    c[0] = 0xC2C2C2C2u;
    c[1] = 0xC3C3C3C3u;
    for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], 0xA1A1A1A1A1A1A1A1ULL);
    EXPECT_EQ(b[0], 'x');
}

TEST(Arena, ResetRetainsChunksAndStopsAllocating) {
    support::Arena arena(1024);
    // Establish a footprint bigger than the first chunk so reset() has
    // several chunks to replay.
    for (int round = 0; round < 3; ++round) {
        (void)arena.alloc_array<char>(5000);
        arena.reset();
    }
    const std::uint64_t warm = arena.chunk_allocs();
    const std::size_t retained = arena.retained_bytes();
    EXPECT_GT(warm, 0u);
    // Steady state: the identical footprint must be served entirely from
    // retained chunks — the counter that feeds MatchStats::scratch_allocs
    // must not move.
    for (int round = 0; round < 10; ++round) {
        (void)arena.alloc_array<char>(5000);
        arena.reset();
    }
    EXPECT_EQ(arena.chunk_allocs(), warm);
    EXPECT_EQ(arena.retained_bytes(), retained);
}

TEST(Arena, CopyBytesPinsAStableCopy) {
    support::Arena arena;
    std::string source = "transient-name";
    const char* pinned = arena.copy_bytes(source.data(), source.size());
    std::fill(source.begin(), source.end(), '?');  // mutate the original
    EXPECT_EQ(std::string(pinned, 14), "transient-name");
}

TEST(ArenaVec, GrowthPreservesContentsAcrossDoubling) {
    support::Arena arena;
    support::ArenaVec<int> vec(arena);
    EXPECT_TRUE(vec.empty());
    for (int i = 0; i < 1000; ++i) vec.push_back(i * 3);
    ASSERT_EQ(vec.size(), 1000u);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(vec[i], i * 3);
    vec.truncate(10);
    EXPECT_EQ(vec.size(), 10u);
    EXPECT_EQ(vec.back(), 27);
    vec.pop_back();
    EXPECT_EQ(vec.size(), 9u);
    vec.clear();
    EXPECT_TRUE(vec.empty());
}

TEST(ArenaVec, ReusedAfterResetWithoutNewChunks) {
    support::Arena arena;
    {
        support::ArenaVec<int> warmup(arena);
        for (int i = 0; i < 500; ++i) warmup.push_back(i);
    }
    arena.reset();
    const std::uint64_t warm = arena.chunk_allocs();
    for (int round = 0; round < 5; ++round) {
        support::ArenaVec<int> vec(arena);
        for (int i = 0; i < 500; ++i) vec.push_back(i);
        EXPECT_EQ(vec.size(), 500u);
        arena.reset();
    }
    EXPECT_EQ(arena.chunk_allocs(), warm);
}

TEST(ArenaBitset, SetTestClearWithinCapacity) {
    support::Arena arena;
    support::ArenaBitset bits(arena, 200);
    EXPECT_FALSE(bits.test(0));
    EXPECT_FALSE(bits.test(199));
    bits.set(0);
    bits.set(63);
    bits.set(64);
    bits.set(199);
    EXPECT_TRUE(bits.test(0));
    EXPECT_TRUE(bits.test(63));
    EXPECT_TRUE(bits.test(64));
    EXPECT_TRUE(bits.test(199));
    EXPECT_FALSE(bits.test(1));
    EXPECT_FALSE(bits.test(198));
    // Out-of-capacity reads are defined (zero), never UB.
    EXPECT_FALSE(bits.test(100000));
    bits.clear();
    EXPECT_FALSE(bits.test(63));
    EXPECT_FALSE(bits.test(199));
}

TEST(ArenaBitset, OrWithClampedStopsAtCapacity) {
    support::Arena arena;
    support::ArenaBitset bits(arena, 64);  // exactly one word
    const std::uint64_t other[2] = {0b1010, ~0ULL};
    bits.or_with_clamped(other, 2);  // second word must be ignored
    EXPECT_TRUE(bits.test(1));
    EXPECT_TRUE(bits.test(3));
    EXPECT_FALSE(bits.test(0));
    EXPECT_FALSE(bits.test(2));
}

TEST(Contracts, ExpectsThrowsOnViolation) {
    EXPECT_THROW(SARIADNE_EXPECTS(false), ContractViolation);
    EXPECT_NO_THROW(SARIADNE_EXPECTS(true));
}

}  // namespace
}  // namespace sariadne
