#include <set>

#include <gtest/gtest.h>

#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "reasoner/knowledge_base.hpp"
#include "matching/oracles.hpp"
#include "ontology/loader.hpp"
#include "reasoner/reasoner.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::workload {
namespace {

TEST(OntologyGen, RespectsConfiguredSizes) {
    OntologyGenConfig config;
    config.class_count = 50;
    config.property_count = 20;
    config.alias_count = 3;
    config.intersection_count = 2;
    Rng rng(1);
    const onto::Ontology o = generate_ontology("http://u", config, rng);
    EXPECT_EQ(o.class_count(), 55u);  // 50 tree + 3 alias + 2 defs
    EXPECT_EQ(o.property_count(), 20u);
    EXPECT_EQ(o.uri(), "http://u");
}

TEST(OntologyGen, GeneratedOntologiesClassifyConsistently) {
    OntologyGenConfig config;
    config.class_count = 40;
    config.disjoint_pairs = 4;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed);
        const onto::Ontology o = generate_ontology("u", config, rng);
        reasoner::RuleReasoner engine;
        EXPECT_NO_THROW(engine.classify(o)) << "seed " << seed;
    }
}

TEST(OntologyGen, DeterministicPerSeed) {
    OntologyGenConfig config;
    Rng rng1(5);
    Rng rng2(5);
    const auto a = generate_ontology("u", config, rng1);
    const auto b = generate_ontology("u", config, rng2);
    ASSERT_EQ(a.class_count(), b.class_count());
    for (onto::ConceptId c = 0; c < a.class_count(); ++c) {
        EXPECT_EQ(a.class_decl(c).name, b.class_decl(c).name);
        EXPECT_EQ(a.class_decl(c).told_parents, b.class_decl(c).told_parents);
    }
}

TEST(OntologyGen, UniverseHasDistinctUris) {
    const auto universe = generate_universe(22, {}, 7);
    EXPECT_EQ(universe.size(), 22u);
    std::set<std::string> uris;
    for (const auto& o : universe) uris.insert(o.uri());
    EXPECT_EQ(uris.size(), 22u);
}

TEST(ServiceGen, ServicesAreDeterministicAndParseable) {
    ServiceWorkload workload(generate_universe(4, {}, 3));
    const auto a = workload.service_xml(17);
    const auto b = workload.service_xml(17);
    EXPECT_EQ(a, b);
    const auto parsed = desc::parse_service(a);
    EXPECT_EQ(parsed.profile.service_name, "Service17");
    EXPECT_EQ(parsed.profile.capabilities.size(), 1u);
}

TEST(ServiceGen, ServicesSpreadAcrossOntologies) {
    const std::size_t kOntologies = 5;
    ServiceWorkload workload(generate_universe(kOntologies, {}, 3));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);

    std::set<onto::OntologyIndex> used;
    for (std::size_t i = 0; i < 20; ++i) {
        const auto resolved = desc::resolve_provided(workload.service(i),
                                                     kb.registry());
        for (const auto& cap : resolved) {
            for (const auto index : cap.ontologies) used.insert(index);
        }
    }
    EXPECT_EQ(used.size(), kOntologies);
}

TEST(ServiceGen, MatchingRequestAlwaysMatchesItsService) {
    ServiceWorkload workload(generate_universe(6, {}, 11));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    matching::EncodedOracle oracle(kb);

    for (std::size_t i = 0; i < 60; ++i) {
        const auto provided = desc::resolve_capability(
            workload.service(i).profile.capabilities.front(), kb.registry());
        const auto wanted = desc::resolve_capability(
            workload.matching_request(i).capabilities.front(), kb.registry());
        EXPECT_TRUE(matching::matches(provided, wanted, oracle))
            << "service " << i;
    }
}

TEST(ServiceGen, WsdlTwinConformsToItsRequest) {
    ServiceWorkload workload(generate_universe(3, {}, 13));
    for (std::size_t i = 0; i < 20; ++i) {
        const auto provided = workload.wsdl(i);
        const auto request = workload.wsdl_request(i);
        EXPECT_TRUE(desc::wsdl_conforms(provided, request)) << i;
        if (i > 0) {
            EXPECT_FALSE(
                desc::wsdl_conforms(workload.wsdl(i - 1), request))
                << "request " << i << " must not conform to service " << i - 1;
        }
    }
}

TEST(ServiceGen, OntologyDocumentsRoundTrip) {
    ServiceWorkload workload(generate_universe(3, {}, 17));
    const auto docs = workload.ontology_documents();
    ASSERT_EQ(docs.size(), 3u);
    for (const auto& doc : docs) {
        EXPECT_NO_THROW((void)onto::load_ontology(doc));
    }
}

TEST(ServiceGen, RandomRequestIsWellFormed) {
    ServiceWorkload workload(generate_universe(3, {}, 19));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (std::uint64_t salt = 0; salt < 10; ++salt) {
        const auto request = workload.random_request(salt);
        EXPECT_NO_THROW(
            (void)desc::resolve_request(request, kb.registry()));
    }
}

TEST(Fig2Workload, CapabilitiesHaveSevenInputsThreeOutputs) {
    const auto fig2 = fig2_ontology();
    const auto [provided, required] = fig2_capabilities(fig2);
    EXPECT_EQ(provided.inputs.size(), 7u);
    EXPECT_EQ(provided.outputs.size(), 3u);
    EXPECT_EQ(required.inputs.size(), 7u);
    EXPECT_EQ(required.outputs.size(), 3u);

    encoding::KnowledgeBase kb;
    kb.register_ontology(fig2);
    matching::EncodedOracle oracle(kb);
    EXPECT_TRUE(matching::matches(
        desc::resolve_capability(provided, kb.registry()),
        desc::resolve_capability(required, kb.registry()), oracle));
}

}  // namespace
}  // namespace sariadne::workload
