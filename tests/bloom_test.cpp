#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.hpp"
#include "support/contracts.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace sariadne::bloom {
namespace {

std::vector<std::string> uris(std::initializer_list<const char*> items) {
    return {items.begin(), items.end()};
}

TEST(BloomFilter, NoFalseNegativesForKeys) {
    BloomFilter filter;
    std::vector<Hash128> keys;
    for (int i = 0; i < 100; ++i) {
        keys.push_back(BloomFilter::element_key("uri-" + std::to_string(i)));
        filter.insert(keys.back());
    }
    for (const auto& key : keys) {
        EXPECT_TRUE(filter.possibly_contains(key));
    }
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
    const BloomFilter filter;
    EXPECT_FALSE(filter.possibly_contains(BloomFilter::element_key("x")));
    EXPECT_EQ(filter.set_bit_count(), 0u);
    EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
}

TEST(BloomFilter, CoversSubsetsOfInsertedSets) {
    BloomFilter filter;
    filter.insert_ontology_set(uris({"http://o/1", "http://o/2", "http://o/3"}));
    // A request drawing on a subset of the advertised ontologies must pass.
    const auto subset = uris({"http://o/1", "http://o/3"});
    EXPECT_TRUE(filter.possibly_covers(subset));
    // An unrelated ontology must (overwhelmingly likely) fail.
    EXPECT_FALSE(filter.possibly_covers(uris({"http://other/9"})));
}

TEST(BloomFilter, SetKeyIsOrderIndependent) {
    const auto a = BloomFilter::set_key(uris({"u1", "u2", "u3"}));
    const auto b = BloomFilter::set_key(uris({"u3", "u1", "u2"}));
    EXPECT_EQ(a.h1, b.h1);
    EXPECT_EQ(a.h2, b.h2);
}

TEST(BloomFilter, MergeIsUnion) {
    BloomFilter a;
    BloomFilter b;
    a.insert(BloomFilter::element_key("x"));
    b.insert(BloomFilter::element_key("y"));
    a.merge(b);
    EXPECT_TRUE(a.possibly_contains(BloomFilter::element_key("x")));
    EXPECT_TRUE(a.possibly_contains(BloomFilter::element_key("y")));
}

TEST(BloomFilter, MergeRejectsDifferentParams) {
    BloomFilter a(BloomParams{1024, 4});
    const BloomFilter b(BloomParams{2048, 4});
    EXPECT_THROW(a.merge(b), Error);
}

TEST(BloomFilter, SerializeRoundTrip) {
    BloomFilter filter(BloomParams{512, 3});
    filter.insert_ontology_set(uris({"a", "b"}));
    const auto wire = filter.serialize();
    const BloomFilter restored = BloomFilter::deserialize(wire);
    EXPECT_EQ(restored, filter);
    EXPECT_EQ(restored.params().bits, 512u);
    EXPECT_EQ(restored.params().hash_count, 3u);
}

TEST(BloomFilter, DeserializeRejectsGarbage) {
    EXPECT_THROW(BloomFilter::deserialize(std::vector<std::uint64_t>{}), Error);
    const std::vector<std::uint64_t> bad{(std::uint64_t{128} << 32) | 2, 0};
    EXPECT_THROW(BloomFilter::deserialize(bad), Error);  // wrong word count
}

TEST(BloomFilter, DeserializeValidatesWireParams) {
    // Summaries arrive from peer directories, so the wire params must be
    // validated as untrusted input (thrown Error), not as caller contracts.
    const std::vector<std::uint64_t> tiny_bits{(std::uint64_t{32} << 32) | 4, 0};
    EXPECT_THROW(BloomFilter::deserialize(tiny_bits), Error);

    std::vector<std::uint64_t> zero_hashes(3, 0);
    zero_hashes[0] = std::uint64_t{128} << 32;  // k = 0: everything "present"
    EXPECT_THROW(BloomFilter::deserialize(zero_hashes), Error);

    std::vector<std::uint64_t> many_hashes(3, 0);
    many_hashes[0] = (std::uint64_t{128} << 32) | 33;  // k above the cap
    EXPECT_THROW(BloomFilter::deserialize(many_hashes), Error);

    // An absurd bit count must be rejected before any allocation happens.
    const std::vector<std::uint64_t> huge{
        (std::uint64_t{0xFFFFFFFFu} << 32) | 4, 0};
    EXPECT_THROW(BloomFilter::deserialize(huge), Error);
}

TEST(BloomFilter, OntologySetInsertsElementKeysOnly) {
    const BloomParams params{1024, 4};
    BloomFilter by_set(params);
    by_set.insert_ontology_set(uris({"http://o/1", "http://o/2"}));

    BloomFilter by_element(params);
    by_element.insert(BloomFilter::element_key("http://o/1"));
    by_element.insert(BloomFilter::element_key("http://o/2"));

    // No combined whole-set key: the filters are bit-identical, and the
    // fill is pinned to at most k bits per element.
    EXPECT_EQ(by_set, by_element);
    EXPECT_LE(by_set.set_bit_count(), std::size_t{2} * params.hash_count);
    EXPECT_TRUE(by_set.possibly_covers(uris({"http://o/2"})));
    EXPECT_FALSE(by_set.possibly_contains(
        BloomFilter::set_key(uris({"http://o/1", "http://o/2"}))));
}

TEST(BloomFilter, ClearResets) {
    BloomFilter filter;
    filter.insert(BloomFilter::element_key("x"));
    EXPECT_GT(filter.set_bit_count(), 0u);
    filter.clear();
    EXPECT_EQ(filter.set_bit_count(), 0u);
    EXPECT_FALSE(filter.possibly_contains(BloomFilter::element_key("x")));
}

TEST(BloomFilter, MeasuredFalsePositiveRateNearTheory) {
    const BloomParams params{2048, 4};
    BloomFilter filter(params);
    constexpr int kInserted = 200;
    for (int i = 0; i < kInserted; ++i) {
        filter.insert(BloomFilter::element_key("member-" + std::to_string(i)));
    }
    int false_positives = 0;
    constexpr int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
        if (filter.possibly_contains(
                BloomFilter::element_key("absent-" + std::to_string(i)))) {
            ++false_positives;
        }
    }
    const double measured =
        static_cast<double>(false_positives) / kProbes;
    const double expected =
        BloomFilter::expected_false_positive_rate(params, kInserted);
    EXPECT_NEAR(measured, expected, 0.02);
}

TEST(BloomFilter, ExpectedRateMonotoneInInsertions) {
    const BloomParams params{1024, 4};
    double prev = 0;
    for (std::size_t n : {10u, 50u, 100u, 500u}) {
        const double rate = BloomFilter::expected_false_positive_rate(params, n);
        EXPECT_GE(rate, prev);
        prev = rate;
    }
    EXPECT_GT(prev, 0.5);  // badly overloaded filter
}

TEST(BloomFilter, OptimalHashCountFormula) {
    EXPECT_EQ(BloomFilter::optimal_hash_count(1024, 0), 1u);
    // m/n = 10 → k ≈ 6.93 → 7.
    EXPECT_EQ(BloomFilter::optimal_hash_count(1000, 100), 7u);
    EXPECT_EQ(BloomFilter::optimal_hash_count(64, 100000), 1u);
    EXPECT_LE(BloomFilter::optimal_hash_count(1u << 30, 1), 32u);
}

TEST(BloomFilter, FillRatioAndSelfEstimate) {
    BloomFilter filter(BloomParams{256, 2});
    for (int i = 0; i < 64; ++i) {
        filter.insert(BloomFilter::element_key(std::to_string(i)));
    }
    EXPECT_GT(filter.fill_ratio(), 0.1);
    EXPECT_LT(filter.fill_ratio(), 0.9);
    EXPECT_GT(filter.false_positive_rate(), 0.0);
    EXPECT_LT(filter.false_positive_rate(), 1.0);
}

TEST(BloomFilter, ParamValidation) {
    EXPECT_THROW((BloomFilter(BloomParams{32, 4})), ContractViolation);
    EXPECT_THROW((BloomFilter(BloomParams{128, 0})), ContractViolation);
    EXPECT_THROW((BloomFilter(BloomParams{128, 64})), ContractViolation);
}

TEST(BloomFilter, CoversEdgeCases) {
    // The routing predicate's degenerate inputs: a fresh (all-zero) filter
    // can cover nothing, and an empty URI list is vacuously covered by any
    // filter — "every URI is possibly present" over zero URIs.
    BloomFilter empty_filter;
    const auto one = uris({"urn:a"});
    EXPECT_FALSE(empty_filter.possibly_covers(one));
    EXPECT_TRUE(empty_filter.possibly_covers({}));

    BloomFilter filter;
    filter.insert_ontology_set(uris({"urn:a", "urn:b"}));
    EXPECT_TRUE(filter.possibly_covers({}));
    // Subset probes succeed (element keys, not a combined set key).
    EXPECT_TRUE(filter.possibly_covers(one));
    EXPECT_TRUE(filter.possibly_covers(uris({"urn:a", "urn:b"})));
    // A superset containing a never-inserted URI fails the conjunction.
    EXPECT_FALSE(filter.possibly_covers(uris({"urn:a", "urn:missing"})));
}

}  // namespace
}  // namespace sariadne::bloom
