// Failure-injection and property tests: the parser must never crash on
// arbitrary bytes, mutated documents must fail cleanly or parse, and the
// capability DAG must keep its invariants under arbitrary interleavings of
// inserts and removals.
#include <string>

#include <gtest/gtest.h>

#include "description/amigos_io.hpp"
#include "directory/dag.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "matching/oracles.hpp"
#include "support/rng.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"
#include "xml/parser.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

// --- XML fuzzing ------------------------------------------------------------

class XmlFuzz : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzz, ::testing::Range(0, 8));

TEST_P(XmlFuzz, RandomBytesNeverCrashTheParser) {
    Rng rng(10000 + GetParam());
    for (int doc = 0; doc < 200; ++doc) {
        const auto length = static_cast<std::size_t>(rng.below(300));
        std::string bytes;
        bytes.reserve(length);
        for (std::size_t i = 0; i < length; ++i) {
            bytes += static_cast<char>(rng.below(256));
        }
        try {
            (void)xml::parse(bytes);
        } catch (const ParseError&) {
            // expected for almost all inputs
        }
    }
}

TEST_P(XmlFuzz, MutatedDocumentsFailCleanlyOrParse) {
    workload::OntologyGenConfig config;
    config.class_count = 20;
    workload::ServiceWorkload workload(
        workload::generate_universe(2, config, 77));
    const std::string original = workload.service_xml(GetParam());

    Rng rng(20000 + GetParam());
    for (int round = 0; round < 300; ++round) {
        std::string mutated = original;
        // 1-4 random single-byte mutations: overwrite, delete or duplicate.
        const int edits = 1 + static_cast<int>(rng.below(4));
        for (int e = 0; e < edits && !mutated.empty(); ++e) {
            const auto pos = rng.below(mutated.size());
            switch (rng.below(3)) {
                case 0:
                    mutated[pos] = static_cast<char>(rng.below(256));
                    break;
                case 1:
                    mutated.erase(pos, 1);
                    break;
                default:
                    mutated.insert(pos, 1, mutated[pos]);
                    break;
            }
        }
        try {
            (void)desc::parse_service(mutated);
        } catch (const Error&) {
            // ParseError / LookupError are the contract; anything else
            // (or a crash) fails the test.
        }
    }
}

TEST(XmlFuzz, DeeplyNestedDocumentParses) {
    const auto nested = [](int depth) {
        std::string text;
        for (int i = 0; i < depth; ++i) text += "<n>";
        for (int i = 0; i < depth; ++i) text += "</n>";
        return text;
    };
    // Any realistic description nests a handful of levels; 400 parses.
    const auto doc = xml::parse(nested(400));
    EXPECT_EQ(doc.root.name(), "n");
    // Depth is attacker-controlled wire input for a recursive parser:
    // beyond the explicit cap it must be a ParseError, not a stack
    // overflow (which is what 2000 levels produced under ASan).
    EXPECT_THROW(xml::parse(nested(2000)), ParseError);
}

TEST(XmlFuzz, HugeAttributeAndTextHandled) {
    const std::string big(200000, 'x');
    const auto doc =
        xml::parse("<a v=\"" + big + "\">" + big + "</a>");
    EXPECT_EQ(doc.root.attribute_or("v", "").size(), big.size());
    EXPECT_EQ(doc.root.text().size(), big.size());
}

// --- DAG invariants under random operations -----------------------------------

class DagProperty : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DagProperty, ::testing::Range(0, 6));

TEST_P(DagProperty, InvariantsHoldUnderRandomInsertRemove) {
    workload::OntologyGenConfig config;
    config.class_count = 25;
    auto universe = workload::generate_universe(2, config, 40 + GetParam());
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceGenConfig svc_config;
    svc_config.seed = 50 + GetParam();
    workload::ServiceWorkload workload(std::move(universe), svc_config);
    matching::EncodedOracle oracle(kb);

    directory::CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    directory::MatchStats stats;
    Rng rng(60 + GetParam());
    std::vector<directory::ServiceId> live;

    for (int op = 0; op < 120; ++op) {
        if (live.empty() || rng.chance(0.65)) {
            const auto service_id =
                static_cast<directory::ServiceId>(op + 1);
            auto cap = desc::resolve_capability(
                workload.service(static_cast<std::size_t>(rng.below(60)))
                    .profile.capabilities.front(),
                kb.registry(), "svc" + std::to_string(service_id));
            dag.insert(directory::DagEntry{std::move(cap), service_id}, oracle,
                       stats);
            live.push_back(service_id);
        } else {
            const auto victim = rng.below(live.size());
            dag.remove_service(live[victim]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        }
        ASSERT_TRUE(dag.validate(oracle)) << "op " << op << " broke the DAG";
    }
    EXPECT_EQ(dag.entry_count(), live.size());
}

TEST_P(DagProperty, QueryAgreesWithFlatScanUnderChurn) {
    workload::OntologyGenConfig config;
    config.class_count = 25;
    auto universe = workload::generate_universe(3, config, 140 + GetParam());
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceGenConfig svc_config;
    svc_config.seed = 150 + GetParam();
    workload::ServiceWorkload workload(std::move(universe), svc_config);

    directory::SemanticDirectory semantic(kb);
    directory::FlatDirectory flat_rebuilt(kb);
    Rng rng(160 + GetParam());

    std::vector<std::pair<directory::ServiceId, std::size_t>> live;
    const auto is_live = [&](std::size_t index) {
        for (const auto& [id, existing] : live) {
            if (existing == index) return true;
        }
        return false;
    };
    for (int op = 0; op < 60; ++op) {
        if (live.empty() || rng.chance(0.7)) {
            const std::size_t index = rng.below(80);
            // Re-publishing a live service name would *replace* it in the
            // directory (re-advertisement semantics) and invalidate the
            // older handle; keep indices unique for the bookkeeping here.
            if (is_live(index)) continue;
            live.emplace_back(semantic.publish(workload.service(index)).id, index);
        } else {
            const auto victim = rng.below(live.size());
            semantic.remove(live[victim].first);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        }
    }

    // Rebuild a flat directory from the surviving services and compare
    // best distances over many requests.
    for (const auto& [id, index] : live) {
        flat_rebuilt.publish(workload.service(index));
    }
    for (const auto& [id, index] : live) {
        const auto resolved = desc::resolve_request(
            workload.matching_request(index), kb.registry());
        const auto from_dag = semantic.query_resolved(resolved);
        directory::MatchStats stats;
        directory::QueryTiming timing;
        const auto from_flat = flat_rebuilt.query(resolved, stats, timing);
        ASSERT_FALSE(from_dag.per_capability[0].empty()) << "index " << index;
        ASSERT_FALSE(from_flat[0].empty());
        EXPECT_EQ(from_dag.per_capability[0][0].semantic_distance,
                  from_flat[0][0].semantic_distance)
            << "index " << index;
    }
}

// --- protocol: malformed documents must not take a directory down --------------

TEST(ProtocolRobustness, DirectorySurvivesMalformedPublishAndRequest) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    directory::SemanticDirectory directory(kb);

    EXPECT_THROW((void)directory.publish_xml("<broken"), ParseError);
    EXPECT_THROW((void)directory.publish_xml("<service/>"), LookupError);
    EXPECT_THROW((void)directory.publish_xml(R"(
        <service name="s"><capability name="c" kind="provided">
        <output concept="http://nowhere#X"/></capability></service>)"),
                 LookupError);
    EXPECT_EQ(directory.service_count(), 0u);

    directory.publish(th::workstation_service());
    EXPECT_THROW((void)directory.query_xml("not xml at all"), ParseError);

    // A healthy query still works afterwards.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    EXPECT_TRUE(directory.query(request).fully_satisfied());
}

}  // namespace
}  // namespace sariadne
