#include <any>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "support/rng.hpp"

namespace sariadne::net {
namespace {

TEST(Topology, GridStructure) {
    const Topology topo = Topology::grid(4, 3);
    EXPECT_EQ(topo.node_count(), 12u);
    EXPECT_EQ(topo.neighbors(0).size(), 2u);   // corner
    EXPECT_EQ(topo.neighbors(1).size(), 3u);   // edge
    EXPECT_EQ(topo.neighbors(5).size(), 4u);   // interior
    EXPECT_TRUE(topo.connected());
}

TEST(Topology, GridHopDistanceIsManhattan) {
    const Topology topo = Topology::grid(5, 5);
    EXPECT_EQ(topo.hop_distance(0, 24), 8);  // (0,0) -> (4,4)
    EXPECT_EQ(topo.hop_distance(0, 0), 0);
    EXPECT_EQ(topo.hop_distance(0, 4), 4);
}

TEST(Topology, RandomGeometricIsConnected) {
    Rng rng(123);
    for (int trial = 0; trial < 5; ++trial) {
        const Topology topo = Topology::random_geometric(30, 0.25, rng);
        EXPECT_EQ(topo.node_count(), 30u);
        EXPECT_TRUE(topo.connected());
    }
}

TEST(Topology, NodeChurnAffectsReachability) {
    Topology topo = Topology::grid(3, 1);  // 0 - 1 - 2
    EXPECT_EQ(topo.hop_distance(0, 2), 2);
    topo.set_up(1, false);
    EXPECT_EQ(topo.hop_distance(0, 2), -1);
    EXPECT_FALSE(topo.connected());
    topo.set_up(1, true);
    EXPECT_EQ(topo.hop_distance(0, 2), 2);
}

TEST(Topology, DistancesFromDownNodeAreUnreachable) {
    Topology topo = Topology::grid(2, 2);
    topo.set_up(0, false);
    const auto dist = topo.hop_distances(0);
    for (const int d : dist) EXPECT_EQ(d, -1);
}

class Recorder : public NodeApp {
public:
    void on_start(Simulator&, NodeId) override {}
    void on_message(Simulator& sim, NodeId, const Message& msg) override {
        received.emplace_back(sim.now(), msg.type);
    }
    std::vector<std::pair<SimTime, std::string>> received;
};

TEST(Simulator, EventsRunInTimeOrder) {
    Simulator sim(Topology::grid(1, 1));
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
    Simulator sim(Topology::grid(1, 1));
    std::vector<int> order;
    sim.schedule(5, [&] { order.push_back(1); });
    sim.schedule(5, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, UnicastLatencyScalesWithHops) {
    Simulator sim(Topology::grid(4, 1), /*per_hop_latency_ms=*/3.0);
    Recorder app;
    sim.attach(3, &app);
    Message msg;
    msg.type = "ping";
    sim.unicast(0, 3, std::move(msg));
    sim.run();
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_DOUBLE_EQ(app.received[0].first, 9.0);  // 3 hops x 3 ms
    EXPECT_EQ(sim.stats().unicasts, 1u);
    EXPECT_EQ(sim.stats().link_transmissions, 3u);
}

TEST(Simulator, UnreachableUnicastIsDropped) {
    Topology topo = Topology::grid(3, 1);
    topo.set_up(1, false);
    Simulator sim(std::move(topo));
    Recorder app;
    sim.attach(2, &app);
    Message msg;
    msg.type = "ping";
    sim.unicast(0, 2, std::move(msg));
    sim.run();
    EXPECT_TRUE(app.received.empty());
    EXPECT_EQ(sim.stats().dropped_unreachable, 1u);
}

TEST(Simulator, BroadcastRespectsTtl) {
    Simulator sim(Topology::grid(5, 1), 1.0);  // 0-1-2-3-4
    std::vector<Recorder> apps(5);
    for (NodeId n = 0; n < 5; ++n) sim.attach(n, &apps[n]);
    Message msg;
    msg.type = "adv";
    sim.broadcast(0, /*ttl_hops=*/2, std::move(msg));
    sim.run();
    EXPECT_TRUE(apps[0].received.empty());  // sender excluded
    EXPECT_EQ(apps[1].received.size(), 1u);
    EXPECT_EQ(apps[2].received.size(), 1u);
    EXPECT_TRUE(apps[3].received.empty());
    EXPECT_TRUE(apps[4].received.empty());
    EXPECT_DOUBLE_EQ(apps[2].received[0].first, 2.0);
}

TEST(Simulator, MessageToDownNodeNotDelivered) {
    Topology topo = Topology::grid(2, 1);
    Simulator sim(std::move(topo));
    Recorder app;
    sim.attach(1, &app);
    Message msg;
    msg.type = "ping";
    sim.unicast(0, 1, std::move(msg));
    sim.topology().set_up(1, false);  // goes down while in flight
    sim.run();
    EXPECT_TRUE(app.received.empty());
}

TEST(Simulator, SelfUnicastDeliversImmediately) {
    Simulator sim(Topology::grid(2, 1));
    Recorder app;
    sim.attach(0, &app);
    Message msg;
    msg.type = "self";
    sim.unicast(0, 0, std::move(msg));
    sim.run();
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_DOUBLE_EQ(app.received[0].first, 0.0);
}

TEST(Simulator, RunUntilBoundsVirtualTime) {
    Simulator sim(Topology::grid(1, 1));
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(100, [&] { ++fired; });
    sim.run(50);
    EXPECT_EQ(fired, 1);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockThroughQuietWindows) {
    Simulator sim(Topology::grid(1, 1));
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.run(50);
    EXPECT_EQ(fired, 1);
    // The clock lands on the window edge, not on the last executed event,
    // so now()-relative deadlines see contiguous time across windows.
    EXPECT_DOUBLE_EQ(sim.now(), 50.0);
    sim.run(70);  // an entirely quiet window still advances time
    EXPECT_DOUBLE_EQ(sim.now(), 70.0);
}

TEST(Simulator, BackToBackWindowsTileLikeOneRun) {
    const auto count_fires = [](Simulator& sim,
                                std::initializer_list<SimTime> stops) {
        int fired = 0;
        std::function<void()> tick;
        tick = [&sim, &fired, &tick] {
            ++fired;
            sim.schedule(7, tick);
        };
        sim.schedule(7, tick);
        for (const SimTime until : stops) sim.run(until);
        return fired;
    };
    Simulator tiled(Topology::grid(1, 1));
    Simulator single(Topology::grid(1, 1));
    EXPECT_EQ(count_fires(tiled, {30, 60, 90}), count_fires(single, {90}));
    EXPECT_DOUBLE_EQ(tiled.now(), 90.0);
    EXPECT_DOUBLE_EQ(single.now(), 90.0);
}

TEST(Simulator, StepExecutesBoundedEvents) {
    Simulator sim(Topology::grid(1, 1));
    int fired = 0;
    for (int i = 0; i < 5; ++i) sim.schedule(i, [&] { ++fired; });
    EXPECT_EQ(sim.step(2), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(sim.idle());
    EXPECT_EQ(sim.step(100), 3u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, TrafficAccountingByType) {
    Simulator sim(Topology::grid(3, 1));
    std::vector<Recorder> apps(3);
    for (NodeId n = 0; n < 3; ++n) sim.attach(n, &apps[n]);
    Message a;
    a.type = "alpha";
    a.size_bytes = 100;
    sim.unicast(0, 2, std::move(a));
    Message b;
    b.type = "beta";
    sim.broadcast(1, 1, std::move(b));
    sim.run();
    EXPECT_EQ(sim.stats().per_type.at("alpha"), 1u);
    EXPECT_EQ(sim.stats().per_type.at("beta"), 2u);
    EXPECT_EQ(sim.stats().bytes_transmitted, 200u);  // 2 hops x 100 bytes
}

class WireRecorder : public NodeApp {
public:
    void on_start(Simulator&, NodeId) override {}
    void on_message(Simulator& sim, NodeId, const Message& msg) override {
        received.push_back({sim.now(), msg.type, msg.wire_seq});
    }
    struct Entry {
        SimTime at;
        std::string type;
        std::uint64_t wire_seq;
    };
    std::vector<Entry> received;
};

TEST(Faults, TotalLossDropsEveryDelivery) {
    Simulator sim(Topology::grid(3, 1));
    Recorder app;
    sim.attach(2, &app);
    FaultPlan plan;
    plan.loss_probability = 1.0;
    sim.set_faults(std::move(plan));
    for (int i = 0; i < 5; ++i) {
        Message msg;
        msg.type = "ping";
        sim.unicast(0, 2, std::move(msg));
    }
    sim.run();
    EXPECT_TRUE(app.received.empty());
    EXPECT_EQ(sim.stats().faults_dropped, 5u);
    // The send itself still happened and was accounted as traffic.
    EXPECT_EQ(sim.stats().unicasts, 5u);
}

TEST(Faults, DuplicationEchoesWithSameWireSeq) {
    Simulator sim(Topology::grid(2, 1));
    WireRecorder app;
    sim.attach(1, &app);
    FaultPlan plan;
    plan.duplication_probability = 1.0;
    sim.set_faults(std::move(plan));
    Message msg;
    msg.type = "ping";
    sim.unicast(0, 1, std::move(msg));
    sim.run();
    ASSERT_EQ(app.received.size(), 2u);
    EXPECT_EQ(sim.stats().faults_duplicated, 1u);
    // The echo is byte-identical: same wire sequence id, so receivers can
    // dedup it; it arrives strictly after the original.
    EXPECT_NE(app.received[0].wire_seq, 0u);
    EXPECT_EQ(app.received[0].wire_seq, app.received[1].wire_seq);
    EXPECT_GT(app.received[1].at, app.received[0].at);
}

TEST(Faults, JitterDelaysButStillDelivers) {
    Simulator sim(Topology::grid(2, 1), /*per_hop_latency_ms=*/5.0);
    Recorder app;
    sim.attach(1, &app);
    FaultPlan plan;
    plan.latency_jitter_ms = 50.0;
    sim.set_faults(std::move(plan));
    Message msg;
    msg.type = "ping";
    sim.unicast(0, 1, std::move(msg));
    sim.run();
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_GE(app.received[0].first, 5.0);
    EXPECT_LE(app.received[0].first, 55.0);
}

TEST(Faults, CrashWindowTakesNodeDownThenRecovers) {
    Simulator sim(Topology::grid(2, 1), 1.0);
    Recorder app;
    sim.attach(1, &app);
    FaultPlan plan;
    plan.crashes.push_back({1, /*down_at=*/10.0, /*up_at=*/100.0});
    sim.set_faults(std::move(plan));
    sim.schedule(50, [&] {  // mid-window: receiver is down
        EXPECT_FALSE(sim.topology().is_up(1));
        Message msg;
        msg.type = "lost";
        sim.unicast(0, 1, std::move(msg));
    });
    sim.schedule(200, [&] {  // after the window: recovered
        EXPECT_TRUE(sim.topology().is_up(1));
        Message msg;
        msg.type = "found";
        sim.unicast(0, 1, std::move(msg));
    });
    sim.run();
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_EQ(app.received[0].second, "found");
    EXPECT_EQ(sim.stats().faults_crashes, 1u);
    EXPECT_EQ(sim.stats().faults_recoveries, 1u);
}

TEST(Faults, DropHookFiltersByPredicate) {
    Simulator sim(Topology::grid(2, 1));
    Recorder app;
    sim.attach(1, &app);
    FaultPlan plan;
    plan.drop = [](NodeId, NodeId, const Message& msg) {
        return msg.type == "blocked";
    };
    sim.set_faults(std::move(plan));
    Message blocked;
    blocked.type = "blocked";
    sim.unicast(0, 1, std::move(blocked));
    Message allowed;
    allowed.type = "allowed";
    sim.unicast(0, 1, std::move(allowed));
    sim.run();
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_EQ(app.received[0].second, "allowed");
    EXPECT_EQ(sim.stats().faults_dropped, 1u);
}

TEST(Faults, LoopbackBypassesFaultInjection) {
    Simulator sim(Topology::grid(2, 1));
    Recorder app;
    sim.attach(0, &app);
    FaultPlan plan;
    plan.loss_probability = 1.0;
    sim.set_faults(std::move(plan));
    Message msg;
    msg.type = "self";
    sim.unicast(0, 0, std::move(msg));
    sim.run();
    // A node talking to itself never crosses the radio: faults don't apply.
    ASSERT_EQ(app.received.size(), 1u);
    EXPECT_EQ(sim.stats().faults_dropped, 0u);
}

TEST(Faults, SameSeedReplaysIdenticalTraffic) {
    const auto run_once = [](std::uint64_t seed) {
        Simulator sim(Topology::grid(4, 1), 1.0);
        std::vector<Recorder> apps(4);
        for (NodeId n = 0; n < 4; ++n) sim.attach(n, &apps[n]);
        FaultPlan plan;
        plan.seed = seed;
        plan.loss_probability = 0.3;
        plan.duplication_probability = 0.2;
        plan.latency_jitter_ms = 10.0;
        sim.set_faults(std::move(plan));
        for (int i = 0; i < 50; ++i) {
            Message msg;
            msg.type = "ping";
            msg.size_bytes = 16;
            sim.unicast(static_cast<NodeId>(i % 4),
                        static_cast<NodeId>((i + 3) % 4), std::move(msg));
        }
        sim.run();
        return sim.stats();
    };
    const TrafficStats a = run_once(42);
    const TrafficStats b = run_once(42);
    const TrafficStats c = run_once(43);
    EXPECT_EQ(a, b);           // identical seed -> identical run
    EXPECT_FALSE(a == c);      // different seed -> different faults
    EXPECT_GT(a.faults_dropped, 0u);
    EXPECT_GT(a.faults_duplicated, 0u);
}

TEST(Faults, InertPlanChangesNothing) {
    const auto run_once = [](bool install_inert_plan) {
        Simulator sim(Topology::grid(3, 1), 2.0);
        std::vector<Recorder> apps(3);
        for (NodeId n = 0; n < 3; ++n) sim.attach(n, &apps[n]);
        if (install_inert_plan) sim.set_faults(FaultPlan{});
        for (int i = 0; i < 20; ++i) {
            Message msg;
            msg.type = "ping";
            msg.size_bytes = 8;
            sim.unicast(0, 2, std::move(msg));
        }
        Message adv;
        adv.type = "adv";
        sim.broadcast(1, 1, std::move(adv));
        sim.run();
        return sim.stats();
    };
    const TrafficStats with_plan = run_once(true);
    const TrafficStats without_plan = run_once(false);
    EXPECT_EQ(with_plan, without_plan);
    EXPECT_EQ(with_plan.faults_dropped, 0u);
    EXPECT_EQ(with_plan.faults_duplicated, 0u);
}

}  // namespace
}  // namespace sariadne::net
