#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "bloom/bloom_filter.hpp"
#include "description/amigos_io.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::ariadne {
namespace {

namespace th = sariadne::testing;
using net::NodeId;
using net::Topology;

encoding::KnowledgeBase make_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

ProtocolConfig fast_config(Protocol protocol) {
    ProtocolConfig config;
    config.protocol = protocol;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1000;
    config.election_wait_ms = 30;
    return config;
}

TEST(Election, TimeoutDrivenElectionProducesDirectories) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(4, 4),
                             fast_config(Protocol::kSAriadne), kb);
    network.start();
    network.run_for(10000);
    const auto dirs = network.directories();
    ASSERT_FALSE(dirs.empty());
    // Advertisements must suppress further elections: directory count
    // stabilizes well below the node count.
    EXPECT_LT(dirs.size(), 16u);
    for (const NodeId dir : dirs) EXPECT_TRUE(network.is_directory(dir));
}

TEST(Election, ElectionPrefersFitterNodes) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kSAriadne), kb);
    network.start();
    network.run_for(8000);
    const auto dirs = network.directories();
    ASSERT_FALSE(dirs.empty());
    // The elected directory's fitness should not be the network minimum.
    double min_fitness = 1e18;
    for (NodeId n = 0; n < 9; ++n) {
        min_fitness = std::min(min_fitness, network.fitness(n));
    }
    for (const NodeId dir : dirs) {
        EXPECT_GT(network.fitness(dir), min_fitness);
    }
}

TEST(Election, StaticAppointmentSuppressesElections) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(4);  // grid center covers all within 2 hops
    network.start();
    network.run_for(10000);
    EXPECT_EQ(network.directories().size(), 1u);
}

TEST(SAriadne, PublishDiscoverRoundTrip) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(100);

    network.publish_service(
        0, desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(2000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    ASSERT_FALSE(outcome.hits.empty());
    EXPECT_EQ(outcome.hits[0].capability_name, "SendDigitalStream");
    EXPECT_EQ(outcome.hits[0].semantic_distance, 3);
    EXPECT_GT(outcome.response_time_ms(), 0.0);
}

TEST(SAriadne, RemoteDirectoryReachedViaBloomForwarding) {
    auto kb = make_kb();
    // Line topology: directories at both ends, vicinity 2 keeps them from
    // hearing each other's advertisements directly.
    DiscoveryNetwork network(Topology::grid(9, 1),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(0);
    network.appoint_directory(8);
    network.start();
    network.run_for(100);

    // Service lives near directory 8; client asks near directory 0.
    network.publish_service(7,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(3000);  // let summaries propagate

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(3000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_GE(outcome.directories_asked, 1u);
}

TEST(SAriadne, BloomFilterPrunesIrrelevantDirectories) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 20;
    auto universe = workload::generate_universe(6, onto_config, 99);
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceWorkload workload(std::move(universe));

    DiscoveryNetwork network(Topology::grid(13, 1),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(0);
    network.appoint_directory(6);
    network.appoint_directory(12);
    network.start();
    network.run_for(100);

    // Directory 6 gets ontology-0 services, directory 12 ontology-1 ones
    // (indices 0 and 6 use ontology 0, indices 1 and 7 use ontology 1).
    network.publish_service(5, workload.service_xml(0));
    network.publish_service(5, workload.service_xml(6));
    network.publish_service(11, workload.service_xml(1));
    network.publish_service(11, workload.service_xml(7));
    network.run_for(5000);

    // A request over ontology 0 issued near directory 0: the Bloom filter
    // must route it to directory 6 (and possibly 12 on a false positive,
    // but never require flooding).
    const auto before = network.traffic().per_type.count("fwd")
                            ? network.traffic().per_type.at("fwd")
                            : 0;
    const auto id =
        network.discover(1, workload.matching_request_xml(0));
    network.run_for(4000);
    const auto after = network.traffic().per_type.at("fwd");

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_GE(after - before, 1u);
    EXPECT_LE(after - before, 2u);  // selective, not a flood beyond peers
}

TEST(Ariadne, SyntacticProtocolRoundTrip) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 20;
    encoding::KnowledgeBase kb;  // unused by syntactic directories
    workload::ServiceWorkload workload(
        workload::generate_universe(2, onto_config, 7));

    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kAriadne), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(100);

    network.publish_service(0, workload.wsdl_xml(2));
    network.run_for(500);

    const auto id = network.discover(8, workload.wsdl_request_xml(2));
    network.run_for(2000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    ASSERT_EQ(outcome.hits.size(), 1u);
    EXPECT_EQ(outcome.hits[0].service_name, "Service2");
}

TEST(Ariadne, UnmatchedRequestAnsweredUnsatisfied) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 20;
    encoding::KnowledgeBase kb;
    workload::ServiceWorkload workload(
        workload::generate_universe(2, onto_config, 7));

    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kAriadne), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(100);
    network.publish_service(0, workload.wsdl_xml(2));
    network.run_for(500);

    const auto id = network.discover(8, workload.wsdl_request_xml(3));
    network.run_for(2000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_FALSE(outcome.satisfied);
    EXPECT_TRUE(outcome.hits.empty());
}

TEST(Protocol, DeferredPublishFlushesAfterElection) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kSAriadne), kb);
    network.start();
    // Publish before any directory exists: must be deferred, then flushed
    // once the first advertisement arrives.
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(12000);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(4000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
}

TEST(SAriadne, EmptyForwardRepliesTriggerReactiveSummaryPull) {
    // Ontology-level coverage is necessary but not sufficient: directory 8
    // caches ProvideGame (media+server ontologies), so its summary covers
    // any media/server request — yet GetVideoStream never matches there.
    // Repeated empty forwarded answers must trip the reactive pull (§4:
    // summaries are re-requested "when the percentage of false positives
    // reaches a given threshold").
    auto kb = make_kb();
    ProtocolConfig config = fast_config(Protocol::kSAriadne);
    config.false_positive_pull_threshold = 2;

    DiscoveryNetwork network(Topology::grid(9, 1), config, kb);
    network.appoint_directory(0);
    network.appoint_directory(8);
    network.start();
    network.run_for(100);

    desc::ServiceDescription games_only;
    games_only.profile.service_name = "GamesOnly";
    games_only.profile.capabilities.push_back(th::provide_game());
    network.publish_service(7, desc::serialize_service(games_only));
    network.run_for(2000);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    for (int i = 0; i < 3; ++i) {
        (void)network.discover(1, desc::serialize_request(request));
        network.run_for(2000);
    }
    const auto& per_type = network.traffic().per_type;
    ASSERT_TRUE(per_type.count("fwd"));
    EXPECT_GE(per_type.at("fwd"), 2u);
    ASSERT_TRUE(per_type.count("summary-pull"));
    // At least one pull beyond the election-time exchange.
    EXPECT_GE(per_type.at("summary-pull"), 2u);
}

TEST(SAriadne, ForwardedComputeAccumulatesInOutcome) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(9, 1),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(0);
    network.appoint_directory(8);
    network.start();
    network.run_for(100);
    network.publish_service(7,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(3000);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(5000);
    const auto& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    ASSERT_TRUE(outcome.satisfied);
    // Compute charged by both the local and the remote directory.
    EXPECT_GT(outcome.directory_compute_ms, 0.0);
    EXPECT_GE(outcome.directories_asked, 1u);
}

TEST(Protocol, ResponseTimeIncludesDirectoryCompute) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3),
                             fast_config(Protocol::kSAriadne), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(100);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(0, desc::serialize_request(request));
    network.run_for(2000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_GT(outcome.directory_compute_ms, 0.0);
    EXPECT_GE(outcome.response_time_ms(), outcome.directory_compute_ms);
}

TEST(Retry, ExhaustedRetriesAreConcludedNotLeaked) {
    auto kb = make_kb();
    ProtocolConfig config = fast_config(Protocol::kSAriadne);
    config.adv_timeout_ms = 1e9;  // no election rescue during the test
    config.request_timeout_ms = 400;
    config.max_request_retries = 2;

    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 1), config, kb, &registry);
    network.appoint_directory(0);
    network.start();
    network.run_for(100);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    // The directory stays reachable (so every retry really transmits) but
    // all request/response traffic is lost in flight: the budget must burn
    // down and the request must be concluded, not leaked.
    net::FaultPlan lossy;
    lossy.drop = [](net::NodeId, net::NodeId, const net::Message& msg) {
        return msg.type == "req" || msg.type == "resp";
    };
    sim(network).set_faults(std::move(lossy));
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(2, desc::serialize_request(request));
    EXPECT_EQ(network.retry_backlog(), 1u);
    network.run_for(10000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    EXPECT_TRUE(outcome.terminal);
    EXPECT_TRUE(outcome.expired);
    EXPECT_FALSE(outcome.satisfied);
    // The leak this guards against: retry state must not outlive the
    // retry budget, and the abandoned request must be counted exactly once.
    EXPECT_EQ(network.retry_backlog(), 0u);
    EXPECT_EQ(registry.counter_value("protocol.requests_retried"), 2u);
    EXPECT_EQ(registry.counter_value("protocol.requests_expired"), 1u);
    EXPECT_EQ(registry.gauge_value("protocol.requests_in_flight"), 0);
    EXPECT_EQ(registry.gauge_value("protocol.deferred_requests"), 0);
}

TEST(Retry, FullPartitionDefersInsteadOfBurningRetries) {
    // Regression: check_request_timeout used to decrement retries_left and
    // count requests_retried even when directory_for(client) returned
    // kNoNode — burning the whole budget with no transmission, so a
    // partition outlasting retries * timeout expired the request even
    // though it healed. A partitioned client must defer, keep its budget,
    // and succeed once the partition heals.
    auto kb = make_kb();
    ProtocolConfig config = fast_config(Protocol::kSAriadne);
    config.adv_timeout_ms = 1e9;  // no election rescue during the test
    config.request_timeout_ms = 400;
    config.max_request_retries = 2;

    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 1), config, kb, &registry);
    network.appoint_directory(0);
    network.start();
    network.run_for(100);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    // Full partition: the only directory is down for far longer than the
    // whole retry budget (2 * 400 ms).
    sim(network).topology().set_up(0, false);
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(2, desc::serialize_request(request));
    network.run_for(8000);
    EXPECT_FALSE(network.outcome(id).terminal);
    EXPECT_EQ(network.retry_backlog(), 1u);
    EXPECT_EQ(registry.counter_value("protocol.requests_expired"), 0u);

    // Heal: the deferred request must go out with its budget intact.
    sim(network).topology().set_up(0, true);
    network.run_for(8000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    EXPECT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_FALSE(outcome.expired);
    EXPECT_EQ(network.retry_backlog(), 0u);
    // At most one real retransmission (the one that succeeded after the
    // heal); the deferral polls during the partition consumed nothing.
    EXPECT_LE(registry.counter_value("protocol.requests_retried"), 1u);
}

TEST(Retry, SatisfiedAnswerReleasesRetryStateImmediately) {
    auto kb = make_kb();
    ProtocolConfig config = fast_config(Protocol::kSAriadne);
    config.request_timeout_ms = 400;
    config.max_request_retries = 2;

    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 3), config, kb, &registry);
    network.appoint_directory(4);
    network.start();
    network.run_for(100);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(2000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_TRUE(outcome.terminal);
    EXPECT_FALSE(outcome.expired);
    EXPECT_EQ(network.retry_backlog(), 0u);
    EXPECT_EQ(registry.counter_value("protocol.requests_satisfied"), 1u);
    EXPECT_EQ(registry.counter_value("protocol.requests_expired"), 0u);
    EXPECT_EQ(registry.gauge_value("protocol.requests_in_flight"), 0);
}

TEST(Protocol, WindowedRunsMatchOneLongRun) {
    // run_for windows must tile virtual time exactly: the same protocol
    // over the same topology must elect the same directories and move the
    // same traffic whether driven in one 9 s run or nine 1 s windows.
    // Regression for the clock staying at the last event instead of the
    // window edge, which skewed every now()-relative deadline.
    auto kb = make_kb();
    DiscoveryNetwork windowed(Topology::grid(4, 4),
                              fast_config(Protocol::kSAriadne), kb);
    DiscoveryNetwork single(Topology::grid(4, 4),
                            fast_config(Protocol::kSAriadne), kb);
    windowed.start();
    single.start();
    for (int i = 0; i < 9; ++i) windowed.run_for(1000);
    single.run_for(9000);

    EXPECT_DOUBLE_EQ(sim(windowed).now(), sim(single).now());
    EXPECT_EQ(windowed.directories(), single.directories());
    EXPECT_EQ(windowed.traffic().per_type, single.traffic().per_type);
    EXPECT_EQ(windowed.traffic().deliveries, single.traffic().deliveries);
}

TEST(SAriadne, CorruptSummaryWireIsContainedAndCounted) {
    // Regression: the summary-push handler fed peer-controlled wire data
    // straight into BloomFilter::deserialize, whose Error unwound through
    // the simulator event loop and killed the whole run. A corrupt image
    // must be dropped, counted, and must not disturb discovery.
    auto kb = make_kb();
    obs::MetricsRegistry registry;
    DiscoveryNetwork network(Topology::grid(3, 1),
                             fast_config(Protocol::kSAriadne), kb, &registry);
    network.appoint_directory(0);
    network.appoint_directory(2);
    network.start();
    network.run_for(200);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(500);

    // Header claims 1024 bits (16 body words) but carries none: the old
    // code threw bloom::Error here and aborted the simulation.
    network.inject_summary_push(2, 0, {(std::uint64_t{1024} << 32) | 4u});
    // Truncated body: a real serialized filter with its last word cut off.
    bloom::BloomFilter real({256, 4});
    const std::string uri = "urn:svc";
    real.insert(bloom::BloomFilter::set_key({&uri, 1}));
    auto wire = real.serialize();
    wire.pop_back();
    network.inject_summary_push(2, 0, std::move(wire));
    network.run_for(500);

    EXPECT_EQ(registry.counter_value("protocol.bloom_wire_rejected"), 2u);

    // The receiving directory is still alive and answering.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(1, desc::serialize_request(request));
    network.run_for(5000);
    EXPECT_TRUE(network.outcome(id).answered);
    EXPECT_TRUE(network.outcome(id).satisfied);
}

}  // namespace
}  // namespace sariadne::ariadne
