#include <algorithm>

#include <gtest/gtest.h>

#include "directory/dag.hpp"
#include "directory/dag_index.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "directory/syntactic_directory.hpp"
#include "directory/taxonomy_directory.hpp"
#include "matching/oracles.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::directory {
namespace {

namespace th = sariadne::testing;
using desc::ResolvedCapability;

class DagFixture : public ::testing::Test {
protected:
    DagFixture() : oracle_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    ResolvedCapability resolve(const desc::Capability& cap,
                               std::string service = "svc") {
        return desc::resolve_capability(cap, kb_.registry(), std::move(service));
    }

    /// A provided capability at the given specialization level:
    /// level 0 = SendDigitalStream; deeper levels narrow the category.
    desc::Capability leveled(int level, const std::string& name) {
        desc::Capability cap = th::send_digital_stream();
        cap.name = name;
        static const char* kCategories[] = {"DigitalServer", "MediaServer",
                                            "VideoServer"};
        cap.category_qname = th::server(kCategories[level]);
        return cap;
    }

    encoding::KnowledgeBase kb_;
    matching::EncodedOracle oracle_;
    MatchStats stats_;
};

TEST_F(DagFixture, InsertBuildsHierarchyFromGenericToSpecific) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(leveled(0, "generic")), 1}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(2, "specific")), 2}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(1, "middle")), 3}, oracle_, stats_);

    EXPECT_EQ(dag.vertex_count(), 3u);
    EXPECT_TRUE(dag.validate(oracle_));
    const auto roots = dag.root_ids();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(dag.entries(roots[0]).front().capability.name, "generic");
    const auto leaves = dag.leaf_ids();
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_EQ(dag.entries(leaves[0]).front().capability.name, "specific");
    // The middle vertex must sit between them (edge rewiring happened).
    const auto mid_children = dag.children(dag.children(roots[0])[0]);
    ASSERT_EQ(mid_children.size(), 1u);
    EXPECT_EQ(mid_children[0], leaves[0]);
}

TEST_F(DagFixture, EquivalentCapabilitiesShareAVertex) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(leveled(0, "a")), 1}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(0, "b")), 2}, oracle_, stats_);
    EXPECT_EQ(dag.vertex_count(), 1u);
    EXPECT_EQ(dag.entry_count(), 2u);
    EXPECT_TRUE(dag.validate(oracle_));
}

TEST_F(DagFixture, SendDigitalStreamIncludesProvideGame) {
    // The paper's Figure 1: "SendDigitalStream includes ProvideGame" —
    // the generic capability must become the specific one's DAG parent.
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(th::send_digital_stream()), 1}, oracle_, stats_);
    dag.insert(DagEntry{resolve(th::provide_game()), 2}, oracle_, stats_);
    EXPECT_EQ(dag.vertex_count(), 2u);
    const auto roots = dag.root_ids();
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(dag.entries(roots[0]).front().capability.name,
              "SendDigitalStream");
    const auto leaves = dag.leaf_ids();
    ASSERT_EQ(leaves.size(), 1u);
    EXPECT_EQ(dag.entries(leaves[0]).front().capability.name, "ProvideGame");
    EXPECT_TRUE(dag.validate(oracle_));
}

TEST_F(DagFixture, UnrelatedCapabilitiesStayDisconnected) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(th::send_digital_stream()), 1}, oracle_, stats_);
    // TitleLookup exchanges Titles — no subsumption link to streaming.
    desc::Capability lookup;
    lookup.name = "TitleLookup";
    lookup.kind = desc::CapabilityKind::kProvided;
    lookup.category_qname = th::server("GameServer");
    lookup.inputs.push_back(desc::Parameter{"t", th::media("Title")});
    lookup.outputs.push_back(desc::Parameter{"t", th::media("Title")});
    dag.insert(DagEntry{resolve(lookup), 2}, oracle_, stats_);

    EXPECT_EQ(dag.vertex_count(), 2u);
    EXPECT_EQ(dag.root_ids().size(), 2u);
    EXPECT_EQ(dag.leaf_ids().size(), 2u);
    EXPECT_TRUE(dag.validate(oracle_));
}

TEST_F(DagFixture, QueryReturnsMinimumDistanceVertex) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(leveled(0, "generic")), 1}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(2, "specific")), 2}, oracle_, stats_);

    // GetVideoStream's category is VideoServer: the specific capability
    // matches at distance 2 less than the generic one.
    const auto hits =
        dag.query(resolve(th::get_video_stream()), oracle_, stats_);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].capability_name, "specific");
    EXPECT_EQ(hits[0].semantic_distance, 1);  // input distance only
}

TEST_F(DagFixture, QueryPrunesNonMatchingSubtrees) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(th::provide_game()), 1}, oracle_, stats_);
    MatchStats query_stats;
    const auto hits =
        dag.query(resolve(th::get_video_stream()), oracle_, query_stats);
    EXPECT_TRUE(hits.empty());
    // Only the root was probed.
    EXPECT_EQ(query_stats.capability_matches, 1u);
}

TEST_F(DagFixture, RemoveServiceSplicesEdges) {
    CapabilityDag dag(FlatSet<onto::OntologyIndex>{0, 1});
    dag.insert(DagEntry{resolve(leveled(0, "generic")), 1}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(1, "middle")), 2}, oracle_, stats_);
    dag.insert(DagEntry{resolve(leveled(2, "specific")), 3}, oracle_, stats_);

    EXPECT_EQ(dag.remove_service(2), 1u);  // middle vertex dies
    EXPECT_EQ(dag.vertex_count(), 2u);
    EXPECT_TRUE(dag.validate(oracle_));
    // Root must now reach the leaf directly.
    const auto roots = dag.root_ids();
    ASSERT_EQ(roots.size(), 1u);
    ASSERT_EQ(dag.children(roots[0]).size(), 1u);
    EXPECT_EQ(dag.entries(dag.children(roots[0])[0]).front().capability.name,
              "specific");
}

TEST_F(DagFixture, DagIndexGroupsBySignatureAndPrunes) {
    DagIndex index;
    index.insert(DagEntry{resolve(th::send_digital_stream()), 1}, oracle_,
                 stats_);

    // A capability using only the media ontology lands in a different DAG.
    desc::Capability media_only = th::send_digital_stream();
    media_only.name = "MediaOnly";
    media_only.category_qname.clear();
    index.insert(DagEntry{resolve(media_only), 2}, oracle_, stats_);
    EXPECT_EQ(index.dag_count(), 2u);

    MatchStats query_stats;
    const auto hits =
        index.query(resolve(th::get_video_stream()), oracle_, query_stats);
    ASSERT_FALSE(hits.empty());
    EXPECT_GT(query_stats.dags_visited, 0u);
}

TEST_F(DagFixture, DagIndexRemovalDropsEmptyDags) {
    DagIndex index;
    index.insert(DagEntry{resolve(th::send_digital_stream()), 7}, oracle_,
                 stats_);
    EXPECT_EQ(index.dag_count(), 1u);
    EXPECT_EQ(index.remove_service(7), 1u);
    EXPECT_EQ(index.dag_count(), 0u);
}

// --- SemanticDirectory ------------------------------------------------------

class DirectoryFixture : public ::testing::Test {
protected:
    DirectoryFixture() : directory_(kb_) {
        kb_.register_ontology(th::media_ontology());
        kb_.register_ontology(th::server_ontology());
    }

    encoding::KnowledgeBase kb_;
    SemanticDirectory directory_;
};

TEST_F(DirectoryFixture, PublishAndQueryFig1Scenario) {
    directory_.publish(th::workstation_service());
    EXPECT_EQ(directory_.service_count(), 1u);
    EXPECT_EQ(directory_.capability_count(), 2u);

    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());
    const QueryResult result = directory_.query(request);
    ASSERT_EQ(result.per_capability.size(), 1u);
    ASSERT_EQ(result.per_capability[0].size(), 1u);
    EXPECT_EQ(result.per_capability[0][0].capability_name, "SendDigitalStream");
    EXPECT_EQ(result.per_capability[0][0].semantic_distance, 3);
    EXPECT_TRUE(result.fully_satisfied());
}

TEST_F(DirectoryFixture, PublishXmlReportsTimingBreakdown) {
    const auto [id, timing] =
        directory_.publish_xml(desc::serialize_service(th::workstation_service()));
    EXPECT_GT(id, 0u);
    EXPECT_GT(timing.parse_ms, 0.0);
    EXPECT_GE(timing.insert_ms, 0.0);
    EXPECT_GT(timing.total_ms(), 0.0);
}

TEST_F(DirectoryFixture, QueryDoesNoReasoning) {
    directory_.publish(th::workstation_service());
    // Force code tables to exist.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    (void)directory_.query(request);
    const auto runs = kb_.classification_runs();
    for (int i = 0; i < 10; ++i) (void)directory_.query(request);
    EXPECT_EQ(kb_.classification_runs(), runs);  // encoded path only
}

TEST_F(DirectoryFixture, RemoveWithdrawsService) {
    const ServiceId id = directory_.publish(th::workstation_service()).id;
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    EXPECT_TRUE(directory_.query(request).fully_satisfied());

    EXPECT_TRUE(directory_.remove(id));
    EXPECT_FALSE(directory_.remove(id));
    EXPECT_EQ(directory_.service_count(), 0u);
    EXPECT_FALSE(directory_.query(request).fully_satisfied());
}

TEST_F(DirectoryFixture, SummaryTracksContent) {
    EXPECT_EQ(directory_.summary().set_bit_count(), 0u);
    const ServiceId id = directory_.publish(th::workstation_service()).id;
    EXPECT_GT(directory_.summary().set_bit_count(), 0u);
    const std::vector<std::string> uris{th::kMediaUri, th::kServerUri};
    EXPECT_TRUE(directory_.summary().possibly_covers(uris));
    directory_.remove(id);
    EXPECT_EQ(directory_.summary().set_bit_count(), 0u);
}

TEST_F(DirectoryFixture, PublishBatchMatchesSequentialPublishes) {
    // publish_batch must converge to the same directory a sequence of
    // publishes would: same table, same summary, same query answers.
    std::vector<desc::ServiceDescription> batch;
    for (int i = 0; i < 4; ++i) {
        desc::ServiceDescription service = th::workstation_service();
        service.profile.service_name = "ws-" + std::to_string(i);
        batch.push_back(service);
    }

    SemanticDirectory sequential(kb_);
    for (const auto& service : batch) sequential.publish(service);
    const auto receipts = directory_.publish_batch(batch);

    ASSERT_EQ(receipts.size(), batch.size());
    EXPECT_EQ(directory_.service_count(), sequential.service_count());
    EXPECT_EQ(directory_.capability_count(), sequential.capability_count());
    EXPECT_TRUE(directory_.summary() == sequential.summary());

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const QueryResult batched = directory_.query(request);
    const QueryResult one_by_one = sequential.query(request);
    ASSERT_EQ(batched.per_capability.size(), 1u);
    EXPECT_EQ(batched.per_capability[0].size(),
              one_by_one.per_capability[0].size());
}

TEST_F(DirectoryFixture, PublishBatchReplacesDuplicateNamesLikeSequential) {
    // A duplicate name inside one batch (and against the cached table)
    // must leave exactly the newest description live, as sequential
    // re-advertisements would.
    const ServiceId original = directory_.publish(th::workstation_service()).id;

    std::vector<desc::ServiceDescription> batch;
    desc::ServiceDescription replacement = th::workstation_service();
    replacement.grounding.address = "http://workstation.local/v2";
    batch.push_back(replacement);
    replacement.grounding.address = "http://workstation.local/v3";
    batch.push_back(replacement);
    const auto receipts = directory_.publish_batch(std::move(batch));

    ASSERT_EQ(receipts.size(), 2u);
    EXPECT_EQ(directory_.service_count(), 1u);
    EXPECT_EQ(directory_.service(original), nullptr);
    EXPECT_EQ(directory_.service(receipts[0].id), nullptr);
    ASSERT_NE(directory_.service(receipts[1].id), nullptr);
    EXPECT_EQ(directory_.service(receipts[1].id)->grounding.address,
              "http://workstation.local/v3");

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    ASSERT_EQ(directory_.query(request).per_capability.size(), 1u);
    EXPECT_EQ(directory_.query(request).per_capability[0].size(), 1u);
}

TEST_F(DirectoryFixture, PublishBatchRejectsWholeBatchOnBadMember) {
    // All-or-nothing: a version-mismatched member leaves the directory
    // untouched.
    desc::ServiceDescription good = th::workstation_service();
    desc::ServiceDescription bad = th::workstation_service();
    bad.profile.service_name = "Stale";
    bad.profile.capabilities[0].code_version = 0xDEADBEEF;  // never current
    std::vector<desc::ServiceDescription> batch{good, bad};
    EXPECT_THROW(directory_.publish_batch(std::move(batch)),
                 VersionMismatchError);
    EXPECT_EQ(directory_.service_count(), 0u);
    EXPECT_EQ(directory_.summary().set_bit_count(), 0u);
}

TEST_F(DirectoryFixture, RemovalSkipsSummaryRebuildWhileSetsStillHeld) {
    // Two services feed identical URI sets into the summary; removing one
    // must keep the filter exactly equal to a directory that only ever
    // saw the survivor (refcounted sets — no rebuild, no stale bits).
    const ServiceId first = directory_.publish(th::workstation_service()).id;
    desc::ServiceDescription twin = th::workstation_service();
    twin.profile.service_name = "Workstation-b";
    directory_.publish(twin);

    SemanticDirectory survivor_only(kb_);
    survivor_only.publish(twin);

    EXPECT_TRUE(directory_.remove(first));
    EXPECT_TRUE(directory_.summary() == survivor_only.summary());
}

TEST_F(DirectoryFixture, UnsatisfiableRequestReturnsEmpty) {
    directory_.publish(th::workstation_service());
    desc::ServiceRequest request;
    desc::Capability impossible = th::get_video_stream();
    impossible.outputs[0].concept_qname = th::media("Title");
    request.capabilities.push_back(impossible);
    const QueryResult result = directory_.query(request);
    EXPECT_FALSE(result.fully_satisfied());
    EXPECT_TRUE(result.per_capability[0].empty());
}

TEST_F(DirectoryFixture, ServiceAccessor) {
    const ServiceId id = directory_.publish(th::workstation_service()).id;
    ASSERT_NE(directory_.service(id), nullptr);
    EXPECT_EQ(directory_.service(id)->profile.service_name, "Workstation");
    EXPECT_EQ(directory_.service(id + 100), nullptr);
}

TEST_F(DirectoryFixture, StaleCodeVersionRejectedAtPublish) {
    // §3.2: advertisements embed the code version they were computed
    // against; a directory must reject stale codes after ontology evolution.
    desc::ServiceDescription service = th::workstation_service();
    FlatSet<onto::OntologyIndex> used{0, 1};
    service.profile.capabilities[0].code_version = kb_.environment_tag(used);
    service.profile.capabilities[1].code_version = kb_.environment_tag(used);
    EXPECT_NO_THROW(directory_.publish(service));

    // The server ontology evolves; the embedded tags are now stale.
    onto::Ontology v2 = th::server_ontology();
    v2.set_version(2);
    kb_.register_ontology(std::move(v2));
    EXPECT_THROW(directory_.publish(service), VersionMismatchError);

    // Refreshing the codes (re-stamping against the new environment) heals.
    service.profile.capabilities[0].code_version = kb_.environment_tag(used);
    service.profile.capabilities[1].code_version = kb_.environment_tag(used);
    EXPECT_NO_THROW(directory_.publish(service));
}

TEST_F(DirectoryFixture, UnstampedDescriptionsAlwaysAccepted) {
    desc::ServiceDescription service = th::workstation_service();  // tags = 0
    EXPECT_NO_THROW(directory_.publish(service));
    onto::Ontology v2 = th::server_ontology();
    v2.set_version(7);
    kb_.register_ontology(std::move(v2));
    service.profile.service_name = "Workstation2";
    EXPECT_NO_THROW(directory_.publish(service));
}

// --- agreement between classified and flat directories ----------------------

class DirectoryAgreement : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryAgreement, ::testing::Range(0, 5));

TEST_P(DirectoryAgreement, SemanticAndFlatReturnSameBestDistance) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 25;
    auto universe =
        workload::generate_universe(4, onto_config, 500 + GetParam());

    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);

    workload::ServiceGenConfig svc_config;
    svc_config.seed = 900 + GetParam();
    workload::ServiceWorkload workload(std::move(universe), svc_config);

    SemanticDirectory semantic(kb);
    FlatDirectory flat(kb);
    constexpr std::size_t kServices = 30;
    for (std::size_t i = 0; i < kServices; ++i) {
        const auto service = workload.service(i);
        semantic.publish(service);
        flat.publish(service);
    }

    for (std::size_t i = 0; i < kServices; ++i) {
        const auto request = workload.matching_request(i);
        const auto resolved = desc::resolve_request(request, kb.registry());

        const QueryResult from_dag = semantic.query(request);
        MatchStats flat_stats;
        QueryTiming flat_timing;
        const auto from_flat = flat.query(resolved, flat_stats, flat_timing);

        ASSERT_EQ(from_dag.per_capability.size(), from_flat.size());
        for (std::size_t c = 0; c < from_flat.size(); ++c) {
            ASSERT_FALSE(from_dag.per_capability[c].empty())
                << "request " << i << " unmatched in DAG directory";
            ASSERT_FALSE(from_flat[c].empty())
                << "request " << i << " unmatched in flat directory";
            EXPECT_EQ(from_dag.per_capability[c][0].semantic_distance,
                      from_flat[c][0].semantic_distance)
                << "request " << i << " best distance differs";
        }
    }
}

TEST_P(DirectoryAgreement, DagQueryDoesFewerMatchesThanFlat) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 25;
    auto universe =
        workload::generate_universe(4, onto_config, 500 + GetParam());
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceGenConfig svc_config;
    svc_config.seed = 900 + GetParam();
    workload::ServiceWorkload workload(std::move(universe), svc_config);

    SemanticDirectory semantic(kb);
    FlatDirectory flat(kb);
    constexpr std::size_t kServices = 40;
    for (std::size_t i = 0; i < kServices; ++i) {
        semantic.publish(workload.service(i));
        flat.publish(workload.service(i));
    }

    std::uint64_t dag_matches = 0;
    std::uint64_t flat_matches = 0;
    for (std::size_t i = 0; i < kServices; i += 4) {
        const auto resolved =
            desc::resolve_request(workload.matching_request(i), kb.registry());
        const auto result = semantic.query_resolved(resolved);
        dag_matches += result.stats.capability_matches;
        MatchStats stats;
        QueryTiming timing;
        (void)flat.query(resolved, stats, timing);
        flat_matches += stats.capability_matches;
    }
    EXPECT_LT(dag_matches, flat_matches);
}

// --- TaxonomyDirectory baseline ----------------------------------------------

TEST_F(DirectoryFixture, TaxonomyDirectoryAgreesOnFig1) {
    TaxonomyDirectory annotated(kb_);
    annotated.publish(th::workstation_service());
    MatchStats stats;
    const auto hits = annotated.query(
        desc::resolve_capability(th::get_video_stream(), kb_.registry()), stats);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].capability_name, "SendDigitalStream");
    EXPECT_EQ(hits[0].semantic_distance, 3);
}

TEST_P(DirectoryAgreement, TaxonomyDirectoryMatchesSemanticDirectory) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 25;
    auto universe =
        workload::generate_universe(3, onto_config, 321 + GetParam());
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceGenConfig svc_config;
    svc_config.seed = 77 + GetParam();
    workload::ServiceWorkload workload(std::move(universe), svc_config);

    SemanticDirectory semantic(kb);
    TaxonomyDirectory annotated(kb);
    for (std::size_t i = 0; i < 20; ++i) {
        semantic.publish(workload.service(i));
        annotated.publish(workload.service(i));
    }
    for (std::size_t i = 0; i < 20; ++i) {
        const auto resolved =
            desc::resolve_request(workload.matching_request(i), kb.registry());
        const auto from_semantic = semantic.query_resolved(resolved);
        MatchStats stats;
        const auto from_annotated = annotated.query(resolved[0], stats);
        ASSERT_FALSE(from_semantic.per_capability[0].empty());
        ASSERT_FALSE(from_annotated.empty()) << "request " << i;
        EXPECT_EQ(from_semantic.per_capability[0][0].semantic_distance,
                  from_annotated[0].semantic_distance);
    }
}

// --- SyntacticDirectory baseline -----------------------------------------------

TEST(SyntacticDirectory, ExactConformanceOnly) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 20;
    workload::ServiceWorkload workload(
        workload::generate_universe(2, onto_config, 42));

    SyntacticDirectory directory;
    for (std::size_t i = 0; i < 10; ++i) {
        directory.publish_xml(workload.wsdl_xml(i));
    }
    EXPECT_EQ(directory.service_count(), 10u);

    QueryTiming timing;
    const auto hits = directory.query(workload.wsdl_request(3), timing);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].service_name, "Service3");
    EXPECT_GT(timing.match_ms, 0.0);

    // A renamed operation gets nothing — syntactic brittleness.
    auto renamed = workload.wsdl_request(3);
    renamed.operations[0].name = "renamedOp";
    EXPECT_TRUE(directory.query(renamed, timing).empty());
}

TEST(SyntacticDirectory, RejectsMalformedPublish) {
    SyntacticDirectory directory;
    EXPECT_THROW(directory.publish_xml("<broken"), ParseError);
    EXPECT_EQ(directory.service_count(), 0u);
}

}  // namespace
}  // namespace sariadne::directory
