#include "obs/metrics.hpp"

void record_fixture() {
    counter("adhoc.metric");
}
