#pragma once
#include <cstdint>
#include <optional>
#include <span>

namespace fixture {

template <typename T>
struct Result {
    T value;
};

struct Frame {
    std::uint32_t id = 0;
};

Result<Frame> try_decode_frame(
    std::span<const std::uint8_t> bytes) noexcept;
std::optional<Frame> try_parse_frame(
    std::span<const std::uint8_t> bytes) noexcept;

}  // namespace fixture
