#pragma once
/* multi-line
   block comment
   spanning lines */
#include <mutex>

inline const char* kText =
    "line one \
continued";

std::mutex naked;
