#pragma once
#include "support/helper.hpp"
