#pragma once
// lint:allow-layer(historical exception, tracked for removal)
#include "directory/types.hpp"
