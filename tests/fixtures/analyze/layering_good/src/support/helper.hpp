#pragma once
