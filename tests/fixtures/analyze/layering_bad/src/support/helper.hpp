#pragma once
#include "directory/types.hpp"
#include "directory/types.hpp"
