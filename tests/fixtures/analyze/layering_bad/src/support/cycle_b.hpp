#pragma once
#include "support/cycle_a.hpp"
