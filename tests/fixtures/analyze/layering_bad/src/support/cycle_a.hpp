#pragma once
#include "support/cycle_b.hpp"
