#pragma once
