#pragma once

namespace fixture {

class Shard {
public:
    void high_then_low();
    void touch_low();
    void both_inverted();

private:
    support::RankedMutex cache_mutex_{support::LockRank::kTaxonomyCache};
    support::RankedMutex shard_mutex_{support::LockRank::kDagShard};
};

}  // namespace fixture
