#include "directory/shard.hpp"

namespace fixture {

void Shard::high_then_low() {
    std::lock_guard<support::RankedMutex> cache_guard(cache_mutex_);
    touch_low();
}

void Shard::touch_low() {
    std::lock_guard<support::RankedMutex> shard_guard(shard_mutex_);
}

void Shard::both_inverted() {
    std::lock_guard<support::RankedMutex> cache_guard(cache_mutex_);
    std::lock_guard<support::RankedMutex> shard_guard(shard_mutex_);
}

}  // namespace fixture
