#pragma once
// lint:hot-path — reader locks and suppressed cold paths are allowed.
#include <shared_mutex>
#include <string>

namespace fixture {

inline int reader_kernel(std::shared_mutex& table_mutex, int x) {
    std::shared_lock<std::shared_mutex> guard(table_mutex);
    return x;
}

inline int cold_setup(int x) {
    // lint:allow-hot-path-alloc(setup path, measured cold)
    std::string label(static_cast<std::size_t>(x), 'a');
    return static_cast<int>(label.size());
}

}  // namespace fixture
