#include "directory/shard.hpp"

namespace fixture {

void Shard::low_then_high() {
    std::lock_guard<support::RankedMutex> shard_guard(shard_mutex_);
    std::lock_guard<support::RankedMutex> cache_guard(cache_mutex_);
}

void Shard::suppressed_inversion() {
    std::lock_guard<support::RankedMutex> cache_guard(cache_mutex_);
    // lint:allow-lock-order(fixture: proven safe by trylock fallback)
    std::lock_guard<support::RankedMutex> shard_guard(shard_mutex_);
}

}  // namespace fixture
