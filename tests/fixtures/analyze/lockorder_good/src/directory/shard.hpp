#pragma once

namespace fixture {

class Shard {
public:
    void low_then_high();
    void suppressed_inversion();

private:
    support::RankedMutex cache_mutex_{support::LockRank::kTaxonomyCache};
    support::RankedMutex shard_mutex_{support::LockRank::kDagShard};
};

}  // namespace fixture
