#pragma once
// lint:hot-path — the fixture match kernel must stay allocation-free.
#include "matching/helpers.hpp"

namespace fixture {

inline int match_kernel(int x) {
    return deep_helper(x);
}

inline int kernel_throwing(int x) {
    if (x < 0) throw x;
    return x;
}

}  // namespace fixture
