#pragma once
#include <string>

namespace fixture {

inline int deeper_helper(int x) {
    std::string label = "x";
    return x + static_cast<int>(label.size());
}

inline int deep_helper(int x) {
    return deeper_helper(x);
}

}  // namespace fixture
