#include <gtest/gtest.h>

#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"
#include "ontology/loader.hpp"
#include "support/errors.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;

TEST(DiscoveryEngine, QuickstartFlow) {
    DiscoveryEngine engine;
    engine.register_ontology_xml(onto::save_ontology(th::media_ontology()));
    engine.register_ontology_xml(onto::save_ontology(th::server_ontology()));

    const auto id =
        engine.publish(desc::serialize_service(th::workstation_service()));
    EXPECT_GT(id, 0u);

    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());
    const auto results = engine.discover(desc::serialize_request(request));
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "Workstation");
    EXPECT_EQ(results[0][0].capability_name, "SendDigitalStream");
    EXPECT_EQ(results[0][0].semantic_distance, 3);
    EXPECT_EQ(results[0][0].grounding.address, "http://workstation.local/media");
}

TEST(DiscoveryEngine, WithdrawRemovesService) {
    DiscoveryEngine engine;
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    const auto id = engine.publish(th::workstation_service());

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    EXPECT_FALSE(engine.discover(request)[0].empty());
    EXPECT_TRUE(engine.withdraw(id));
    EXPECT_TRUE(engine.discover(request)[0].empty());
    EXPECT_FALSE(engine.withdraw(id));
}

TEST(DiscoveryEngine, PublishBeforeOntologyFails) {
    DiscoveryEngine engine;
    EXPECT_THROW(engine.publish(th::workstation_service()), LookupError);
}

TEST(DiscoveryEngine, MultiCapabilityRequest) {
    DiscoveryEngine engine;
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    engine.publish(th::workstation_service());

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    desc::Capability game = th::provide_game();
    game.kind = desc::CapabilityKind::kRequired;
    request.capabilities.push_back(game);
    desc::Capability impossible = th::get_video_stream();
    impossible.name = "Impossible";
    impossible.outputs[0].concept_qname = th::media("Title");
    request.capabilities.push_back(impossible);

    const auto results = engine.discover(request);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].empty());
    EXPECT_FALSE(results[1].empty());
    EXPECT_TRUE(results[2].empty());
}

TEST(DiscoveryEngine, OntologyEvolutionIsPickedUp) {
    DiscoveryEngine engine;
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    engine.publish(th::workstation_service());

    // Version 2 of the server ontology inserts a level between
    // DigitalServer and MediaServer, increasing the category distance by 1.
    onto::Ontology v2(th::kServerUri, 2);
    const auto server = v2.add_class("Server");
    const auto digital = v2.add_class("DigitalServer");
    const auto streaming = v2.add_class("StreamingServer");
    const auto media = v2.add_class("MediaServer");
    const auto video = v2.add_class("VideoServer");
    const auto game = v2.add_class("GameServer");
    v2.add_subclass_of(digital, server);
    v2.add_subclass_of(streaming, digital);
    v2.add_subclass_of(media, streaming);
    v2.add_subclass_of(video, media);
    v2.add_subclass_of(game, digital);
    engine.register_ontology(std::move(v2));

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto results = engine.discover(request);
    ASSERT_FALSE(results[0].empty());
    EXPECT_EQ(results[0][0].semantic_distance, 4);  // was 3 under version 1
}

TEST(DiscoveryEngine, RankingPrefersCloserAdvertisement) {
    DiscoveryEngine engine;
    engine.register_ontology(th::media_ontology());
    engine.register_ontology(th::server_ontology());
    engine.publish(th::workstation_service());

    // A specialized video server matches GetVideoStream at distance 1.
    desc::ServiceDescription video_service;
    video_service.profile.service_name = "VideoBox";
    video_service.grounding.address = "http://videobox.local";
    desc::Capability cap = th::send_digital_stream();
    cap.name = "StreamVideo";
    cap.category_qname = th::server("VideoServer");
    video_service.profile.capabilities.push_back(cap);
    engine.publish(video_service);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto results = engine.discover(request);
    ASSERT_EQ(results[0].size(), 1u);
    EXPECT_EQ(results[0][0].service_name, "VideoBox");
    EXPECT_EQ(results[0][0].semantic_distance, 1);
}

}  // namespace
}  // namespace sariadne
