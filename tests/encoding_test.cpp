#include <cmath>

#include <gtest/gtest.h>

#include "encoding/code_table.hpp"
#include "reasoner/knowledge_base.hpp"
#include "encoding/lin_encoding.hpp"
#include "reasoner/reasoner.hpp"
#include "support/errors.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"

namespace sariadne::encoding {
namespace {

using onto::ConceptId;
using onto::Ontology;
using reasoner::RuleReasoner;
using reasoner::Taxonomy;

TEST(LinEncoding, PaperFunctionValues) {
    // linKinvexpP(x) = 1/p^⌊x/k⌋ + (x mod k)·(1/k)·(1/p^⌊x/k⌋), p=2, k=5.
    const EncodingParams params;  // p=2, k=5
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(0, params), 1.0);
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(1, params), 1.2);
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(4, params), 1.8);
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(5, params), 0.5);
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(6, params), 0.6);
    EXPECT_DOUBLE_EQ(lin_k_invexp_p(10, params), 0.25);
}

TEST(LinEncoding, SlotsAreDisjointAndInsideUnitInterval) {
    const EncodingParams params;
    std::vector<Interval> slots;
    for (std::uint64_t x = 0; x < 64; ++x) {
        const Interval slot = sibling_slot(x, params);
        EXPECT_FALSE(slot.empty());
        EXPECT_GT(slot.lo, 0.0);
        EXPECT_LE(slot.hi, 1.0);
        for (const Interval& other : slots) {
            EXPECT_FALSE(slot.overlaps(other))
                << "slot " << x << " overlaps an earlier slot";
        }
        slots.push_back(slot);
    }
}

TEST(LinEncoding, BlockZeroTilesUpperHalf) {
    const EncodingParams params;
    EXPECT_DOUBLE_EQ(sibling_slot(0, params).lo, 0.5);
    EXPECT_DOUBLE_EQ(sibling_slot(4, params).hi, 1.0);
}

TEST(LinEncoding, OtherParameterValues) {
    const EncodingParams params{3, 4};
    for (std::uint64_t x = 0; x < 32; ++x) {
        const Interval slot = sibling_slot(x, params);
        EXPECT_FALSE(slot.empty());
        for (std::uint64_t y = 0; y < x; ++y) {
            EXPECT_FALSE(slot.overlaps(sibling_slot(y, params)));
        }
    }
}

TEST(LinEncoding, CapacityEntriesPerLevel) {
    // §3.2 reports 1071 first-level entries for p=2, k=5 on 64-bit doubles;
    // the exact number depends on the nesting normalization, but it must be
    // in the same order of magnitude and beyond any realistic ontology.
    const std::uint64_t entries = max_entries_per_level({});
    EXPECT_GT(entries, 1000u);
    RecordProperty("entries_per_level", static_cast<int>(entries));
}

TEST(LinEncoding, CapacityNestingDepth) {
    // §3.2 reports 462 levels for first-entry chains, a figure that
    // presupposes values sinking into the double exponent range. Our
    // nesting projects into absolute sub-intervals of [0,1), whose
    // discrimination is bounded by the 52-bit mantissa: about
    // 52 / log2(2k) ≈ 15 levels for k = 5. Service ontologies are far
    // shallower; the deviation is recorded in EXPERIMENTS.md.
    const std::uint64_t depth = max_nesting_depth({});
    EXPECT_GE(depth, 14u);
    EXPECT_LT(depth, 64u);
    RecordProperty("nesting_depth", static_cast<int>(depth));
}

TEST(LinEncoding, ShallowerSlotsNestDeeper) {
    // Smaller k consumes fewer mantissa bits per level.
    EXPECT_GT(max_nesting_depth({2, 2}), max_nesting_depth({2, 16}));
}

TEST(Interval, ContainmentAndProjection) {
    const Interval outer{0.2, 0.6};
    const Interval inner = outer.project(Interval{0.5, 0.75});
    EXPECT_DOUBLE_EQ(inner.lo, 0.4);
    EXPECT_DOUBLE_EQ(inner.hi, 0.5);
    EXPECT_TRUE(outer.contains(inner));
    EXPECT_FALSE(inner.contains(outer));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_TRUE(outer.contains_point(0.2));
    EXPECT_FALSE(outer.contains_point(0.6));
}

Taxonomy classify(const Ontology& o) {
    RuleReasoner engine;
    return engine.classify(o);
}

TEST(CodeTable, SubsumptionMatchesTaxonomyOnFig1Ontology) {
    const Ontology o = sariadne::testing::media_ontology();
    const Taxonomy tax = classify(o);
    const CodeTable table = CodeTable::build(o, tax);

    for (ConceptId a = 0; a < o.class_count(); ++a) {
        for (ConceptId b = 0; b < o.class_count(); ++b) {
            ASSERT_EQ(table.subsumes(a, b), tax.subsumes(a, b))
                << o.class_name(a) << " vs " << o.class_name(b);
            ASSERT_EQ(table.distance(a, b), tax.distance(a, b))
                << o.class_name(a) << " vs " << o.class_name(b);
        }
    }
}

TEST(CodeTable, TreeOntologyHasOneIntervalPerConcept) {
    const Ontology o = sariadne::testing::server_ontology();
    const CodeTable table = CodeTable::build(o, classify(o));
    EXPECT_EQ(table.total_occurrences(), o.class_count());
}

TEST(CodeTable, MultiParentConceptReplicates) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_subclass_of(c, a);
    o.add_subclass_of(c, b);
    const CodeTable table = CodeTable::build(o, classify(o));
    EXPECT_EQ(table.code(c).occurrences.size(), 2u);
    EXPECT_TRUE(table.subsumes(a, c));
    EXPECT_TRUE(table.subsumes(b, c));
    EXPECT_FALSE(table.subsumes(a, b));
    EXPECT_EQ(table.distance(a, c), 1);
}

TEST(CodeTable, EquivalentConceptsShareCodes) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    o.add_equivalent(a, b);
    const CodeTable table = CodeTable::build(o, classify(o));
    EXPECT_TRUE(table.subsumes(a, b));
    EXPECT_TRUE(table.subsumes(b, a));
    EXPECT_EQ(table.distance(a, b), 0);
}

TEST(CodeTable, VersionTagChangesWithVersionAndParams) {
    Ontology o1("u", 1);
    o1.add_class("A");
    Ontology o2("u", 2);
    o2.add_class("A");
    const auto t1 = CodeTable::build(o1, classify(o1));
    const auto t2 = CodeTable::build(o2, classify(o2));
    const auto t3 = CodeTable::build(o1, classify(o1), EncodingParams{3, 5});
    EXPECT_NE(t1.version_tag(), t2.version_tag());
    EXPECT_NE(t1.version_tag(), t3.version_tag());
}

// Property: codes agree with the reasoner on randomized ontologies.
class CodeAgreement : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodeAgreement, ::testing::Range(0, 10));

TEST_P(CodeAgreement, CodesReproduceTaxonomyExactly) {
    workload::OntologyGenConfig config;
    config.class_count = 40 + GetParam() * 7;
    config.alias_count = 3;
    config.intersection_count = (GetParam() % 3 == 0) ? 2 : 0;
    config.multi_parent_rate = (GetParam() % 2 == 0) ? 0.15 : 0.0;
    if (config.multi_parent_rate > 0) config.disjoint_pairs = 0;
    Rng rng(999 + GetParam() * 17);
    const Ontology o = workload::generate_ontology("u", config, rng);
    const Taxonomy tax = classify(o);
    const CodeTable table = CodeTable::build(o, tax);

    for (ConceptId a = 0; a < o.class_count(); ++a) {
        for (ConceptId b = 0; b < o.class_count(); ++b) {
            ASSERT_EQ(table.subsumes(a, b), tax.subsumes(a, b))
                << "seed " << GetParam() << ": " << o.class_name(a) << " vs "
                << o.class_name(b);
            ASSERT_EQ(table.distance(a, b), tax.distance(a, b));
        }
    }
}

TEST(CodeTable, DeepChainWithinCapacity) {
    Ontology o("u");
    ConceptId prev = o.add_class("C0");
    for (int i = 1; i < 13; ++i) {
        const ConceptId next = o.add_class("C" + std::to_string(i));
        o.add_subclass_of(next, prev);
        prev = next;
    }
    const CodeTable table = CodeTable::build(o, classify(o));
    EXPECT_TRUE(table.subsumes(0, prev));
    EXPECT_EQ(table.distance(0, prev), 12);
}

TEST(CodeTable, PrecisionExhaustionReportsCleanly) {
    // Past the double-precision nesting budget the builder must fail loudly
    // (never silently produce colliding codes).
    Ontology o("u");
    ConceptId prev = o.add_class("C0");
    for (int i = 1; i < 200; ++i) {
        const ConceptId next = o.add_class("C" + std::to_string(i));
        o.add_subclass_of(next, prev);
        prev = next;
    }
    EXPECT_THROW(CodeTable::build(o, classify(o)), Error);
}

TEST(KnowledgeBase, ResolveAndDistance) {
    KnowledgeBase kb;
    kb.register_ontology(sariadne::testing::media_ontology());
    kb.register_ontology(sariadne::testing::server_ontology());

    const auto digital = kb.resolve(sariadne::testing::media("DigitalResource"));
    const auto video = kb.resolve(sariadne::testing::media("VideoResource"));
    EXPECT_TRUE(kb.subsumes(digital, video));
    EXPECT_EQ(kb.distance(digital, video), 1);
    EXPECT_EQ(kb.distance(video, digital), std::nullopt);

    // Cross-ontology concepts are unrelated.
    const auto video_server = kb.resolve(sariadne::testing::server("VideoServer"));
    EXPECT_FALSE(kb.subsumes(digital, video_server));
    EXPECT_EQ(kb.distance(digital, video_server), std::nullopt);
}

TEST(KnowledgeBase, ClassificationIsLazyAndCached) {
    KnowledgeBase kb;
    kb.register_ontology(sariadne::testing::media_ontology());
    EXPECT_EQ(kb.classification_runs(), 0u);
    const auto a = kb.resolve(sariadne::testing::media("Stream"));
    const auto b = kb.resolve(sariadne::testing::media("VideoStream"));
    (void)kb.distance(a, b);
    (void)kb.distance(a, b);
    (void)kb.subsumes(a, b);
    EXPECT_EQ(kb.classification_runs(), 1u);
}

TEST(KnowledgeBase, OntologyUpgradeRebuildsCodes) {
    KnowledgeBase kb;
    Ontology v1(sariadne::testing::kMediaUri, 1);
    v1.add_class("A");
    v1.add_class("B");
    const auto index = kb.register_ontology(std::move(v1));
    const auto tag1 = kb.code_table(index).version_tag();

    Ontology v2(sariadne::testing::kMediaUri, 2);
    const auto a = v2.add_class("A");
    const auto b = v2.add_class("B");
    v2.add_subclass_of(b, a);
    kb.register_ontology(std::move(v2));
    const auto tag2 = kb.code_table(index).version_tag();
    EXPECT_NE(tag1, tag2);
    EXPECT_TRUE(kb.code_table(index).subsumes(a, b));
}

}  // namespace
}  // namespace sariadne::encoding
