// transport_test — the Transport seam. Socket-level behaviours of
// net::EventLoopTransport over real loopback connections (framing across
// partial reads, short writes of large frames, peer close, oversized and
// malformed frame rejection, write-queue backpressure, ingress field
// rewriting) and the SimTransport equivalence pin: DiscoveryNetwork built
// through the topology convenience constructor must behave identically —
// same outcomes, same TrafficStats, same sim.* counters — to one built
// over an explicit SimTransport, since the former is sugar for the latter.
#include <gtest/gtest.h>

#include <any>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include "ariadne/messages.hpp"
#include "ariadne/protocol.hpp"
#include "description/amigos_io.hpp"
#include "net/sim_transport.hpp"
#include "ariadne/wire.hpp"
#include "net/event_loop.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "support/lock_rank.hpp"
#include "test_helpers.hpp"

namespace sariadne::net {
namespace {

namespace th = sariadne::testing;
using namespace std::chrono_literals;

/// Runs an EventLoopTransport's reactor on a background thread. Handlers
/// must be installed before start(); the destructor stops and joins.
struct LoopRunner {
    explicit LoopRunner(EventLoopConfig config) : transport(std::move(config)) {}

    ~LoopRunner() {
        transport.request_stop();
        if (thread.joinable()) thread.join();
    }

    void start() {
        thread = std::thread([this] { transport.run_until_stopped(200); });
    }

    EventLoopTransport transport;
    std::thread thread;
};

/// Minimal blocking wire-codec client — deliberately not the transport's
/// own code, so both framing implementations check each other.
class TestClient {
public:
    explicit TestClient(std::uint16_t port) {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
        const int one = 1;
        if (fd_ >= 0) {
            ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
    }

    ~TestClient() { close(); }

    bool connected() const noexcept { return fd_ >= 0; }

    void close() {
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }

    static std::vector<std::uint8_t> frame(
        const ariadne::wire::WireMessage& message) {
        const std::vector<std::uint8_t> body = ariadne::wire::encode(message);
        const auto len = static_cast<std::uint32_t>(body.size());
        std::vector<std::uint8_t> framed(4 + body.size());
        framed[0] = static_cast<std::uint8_t>(len & 0xFF);
        framed[1] = static_cast<std::uint8_t>((len >> 8) & 0xFF);
        framed[2] = static_cast<std::uint8_t>((len >> 16) & 0xFF);
        framed[3] = static_cast<std::uint8_t>((len >> 24) & 0xFF);
        std::memcpy(framed.data() + 4, body.data(), body.size());
        return framed;
    }

    void send_bytes(const std::uint8_t* data, std::size_t size) {
        std::size_t off = 0;
        while (off < size) {
            const ssize_t sent =
                ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
            ASSERT_GT(sent, 0);
            off += static_cast<std::size_t>(sent);
        }
    }

    void send_frame(const ariadne::wire::WireMessage& message) {
        const auto bytes = frame(message);
        send_bytes(bytes.data(), bytes.size());
    }

    /// Blocks for one frame; fails the test on peer close or bad framing.
    ariadne::wire::WireMessage read_frame() {
        while (!extractable()) {
            std::uint8_t chunk[65536];
            const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (got <= 0) {
                ADD_FAILURE() << "connection closed while expecting a frame";
                return {};
            }
            buf_.insert(buf_.end(), chunk, chunk + got);
        }
        const std::uint32_t len = peek_len();
        auto decoded =
            ariadne::wire::try_decode({buf_.data() + 4, len});
        buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
        if (!decoded) {
            ADD_FAILURE() << "malformed frame from transport: "
                          << decoded.error().message;
            return {};
        }
        return std::move(decoded).value();
    }

    /// True iff the peer closed the connection (EOF) within `wait`.
    bool closed_by_peer(std::chrono::milliseconds wait) {
        timeval tv{};
        tv.tv_sec = static_cast<long>(wait.count() / 1000);
        tv.tv_usec = static_cast<long>((wait.count() % 1000) * 1000);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        std::uint8_t chunk[256];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        return got == 0;
    }

private:
    bool extractable() const {
        return buf_.size() >= 4 && buf_.size() - 4 >= peek_len();
    }

    std::uint32_t peek_len() const {
        return static_cast<std::uint32_t>(buf_[0]) |
               (static_cast<std::uint32_t>(buf_[1]) << 8) |
               (static_cast<std::uint32_t>(buf_[2]) << 16) |
               (static_cast<std::uint32_t>(buf_[3]) << 24);
    }

    int fd_ = -1;
    std::vector<std::uint8_t> buf_;
};

/// Deliveries recorded across the reactor/test thread boundary.
struct DeliveryLog {
    support::RankedMutex mutex{support::LockRank::kTransportQueue};
    std::vector<Message> messages;

    void push(const Message& message) {
        std::lock_guard lock(mutex);
        messages.push_back(message);
    }

    std::size_t size() {
        std::lock_guard lock(mutex);
        return messages.size();
    }

    Message at(std::size_t index) {
        std::lock_guard lock(mutex);
        return messages.at(index);
    }

    bool wait_for_size(std::size_t expected, std::chrono::milliseconds limit) {
        const auto deadline = std::chrono::steady_clock::now() + limit;
        while (std::chrono::steady_clock::now() < deadline) {
            if (size() >= expected) return true;
            std::this_thread::sleep_for(1ms);
        }
        return size() >= expected;
    }
};

std::uint64_t counter_value(obs::MetricsRegistry& registry,
                            std::string_view name) {
    return registry.counter(name).value();
}

TEST(EventLoopTransport, DeliversRequestAndRoutesResponseBack) {
    LoopRunner runner{EventLoopConfig{}};
    auto& transport = runner.transport;
    transport.set_delivery_handler([&](NodeId self, const Message& message) {
        ASSERT_EQ(self, 0u);
        if (message.type != "req") return;
        const auto& request =
            std::any_cast<const ariadne::msg::Request&>(message.payload);
        Message reply;
        reply.type = "resp";
        reply.size_bytes = 16;
        reply.payload = ariadne::msg::Response{
            request.request_id, {}, true, 0.0, 1};
        transport.unicast(0, message.source, std::move(reply));
    });
    runner.start();

    TestClient client(transport.local_port());
    ASSERT_TRUE(client.connected());
    ariadne::wire::WireMessage request;
    request.type = ariadne::wire::MsgType::kRequest;
    request.payload = ariadne::wire::Request{42, 0, "<request/>"};
    client.send_frame(request);

    const auto reply = client.read_frame();
    ASSERT_EQ(reply.type, ariadne::wire::MsgType::kResponse);
    const auto& response = std::get<ariadne::wire::Response>(reply.payload);
    EXPECT_EQ(response.request_id, 42u);
    EXPECT_TRUE(response.satisfied);
}

TEST(EventLoopTransport, RewritesClientFieldToConnectionId) {
    DeliveryLog log;
    LoopRunner runner{EventLoopConfig{}};
    runner.transport.set_delivery_handler(
        [&](NodeId, const Message& message) { log.push(message); });
    runner.start();

    TestClient client(runner.transport.local_port());
    ASSERT_TRUE(client.connected());
    ariadne::wire::WireMessage request;
    request.type = ariadne::wire::MsgType::kRequest;
    // A spoofed client id: the peer claims to be node 999 so responses
    // would be directed elsewhere. The transport must overwrite it.
    request.payload = ariadne::wire::Request{7, 999, "<request/>"};
    client.send_frame(request);

    ASSERT_TRUE(log.wait_for_size(1, 2000ms));
    const Message delivered = log.at(0);
    const auto& parsed =
        std::any_cast<const ariadne::msg::Request&>(delivered.payload);
    EXPECT_EQ(parsed.client, delivered.source);
    EXPECT_NE(parsed.client, 999u);
}

TEST(EventLoopTransport, ReassemblesFrameFromPartialWrites) {
    DeliveryLog log;
    LoopRunner runner{EventLoopConfig{}};
    runner.transport.set_delivery_handler(
        [&](NodeId, const Message& message) { log.push(message); });
    runner.start();

    TestClient client(runner.transport.local_port());
    ASSERT_TRUE(client.connected());
    const std::string document(4096, 'd');
    ariadne::wire::WireMessage publish;
    publish.type = ariadne::wire::MsgType::kPublish;
    publish.payload = ariadne::wire::PublishDoc{document, 5};
    const auto bytes = TestClient::frame(publish);

    // Dribble the frame: a split inside the length prefix, then two body
    // chunks, with pauses so each arrives as a separate read.
    client.send_bytes(bytes.data(), 2);
    std::this_thread::sleep_for(20ms);
    client.send_bytes(bytes.data() + 2, 100);
    std::this_thread::sleep_for(20ms);
    client.send_bytes(bytes.data() + 102, bytes.size() - 102);

    ASSERT_TRUE(log.wait_for_size(1, 2000ms));
    const Message delivered = log.at(0);
    EXPECT_EQ(delivered.type, "pub");
    const auto& doc =
        std::any_cast<const ariadne::msg::PublishDoc&>(delivered.payload);
    EXPECT_EQ(doc.document, document);
    EXPECT_EQ(doc.pub_id, 5u);
    EXPECT_EQ(log.size(), 1u);  // one frame, not one per chunk
}

TEST(EventLoopTransport, LargeFrameSurvivesShortWrites) {
    LoopRunner runner{EventLoopConfig{}};
    auto& transport = runner.transport;
    // ~900 KB — larger than the default loopback socket send buffer, so
    // the reactor's flush necessarily takes several short writes while
    // the client is still asleep.
    const std::string state(900 * 1024, 's');
    transport.set_delivery_handler([&](NodeId, const Message& message) {
        if (message.type != "req") return;
        Message reply;
        reply.type = "handover";
        reply.size_bytes = static_cast<std::uint32_t>(state.size());
        reply.payload = ariadne::msg::Handover{state};
        transport.unicast(0, message.source, std::move(reply));
    });
    runner.start();

    TestClient client(transport.local_port());
    ASSERT_TRUE(client.connected());
    ariadne::wire::WireMessage request;
    request.type = ariadne::wire::MsgType::kRequest;
    request.payload = ariadne::wire::Request{1, 0, "<request/>"};
    client.send_frame(request);
    std::this_thread::sleep_for(100ms);  // force the write queue to fill

    const auto reply = client.read_frame();
    ASSERT_EQ(reply.type, ariadne::wire::MsgType::kHandover);
    EXPECT_EQ(std::get<ariadne::wire::Handover>(reply.payload).state_xml,
              state);
}

TEST(EventLoopTransport, PeerCloseReclaimsSlotForNewConnections) {
    obs::MetricsRegistry registry;
    EventLoopConfig config;
    config.max_connections = 1;  // a single slot: reuse is observable
    LoopRunner runner{config};
    runner.transport.set_metrics(&registry);
    runner.transport.set_delivery_handler([](NodeId, const Message&) {});
    runner.start();

    auto& closed = registry.counter(obs::names::kTransportConnectionsClosed);
    auto& accepted =
        registry.counter(obs::names::kTransportConnectionsAccepted);
    {
        TestClient first(runner.transport.local_port());
        ASSERT_TRUE(first.connected());
        ariadne::wire::WireMessage ping;
        ping.type = ariadne::wire::MsgType::kSummaryPull;
        ping.payload = ariadne::wire::SummaryPull{};
        first.send_frame(ping);  // guarantees the accept has happened
        const auto deadline = std::chrono::steady_clock::now() + 2s;
        while (accepted.value() < 1 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(1ms);
        }
        ASSERT_EQ(accepted.value(), 1u);
    }  // first closes

    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (closed.value() < 1 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(closed.value(), 1u);

    // The slot must be free again: a second client fits into the single
    // connection slot instead of being rejected.
    TestClient second(runner.transport.local_port());
    ASSERT_TRUE(second.connected());
    ariadne::wire::WireMessage ping;
    ping.type = ariadne::wire::MsgType::kSummaryPull;
    ping.payload = ariadne::wire::SummaryPull{};
    second.send_frame(ping);
    const auto deadline2 = std::chrono::steady_clock::now() + 2s;
    while (accepted.value() < 2 &&
           std::chrono::steady_clock::now() < deadline2) {
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(accepted.value(), 2u);
    EXPECT_EQ(
        registry.counter(obs::names::kTransportConnectionsRejected).value(),
        0u);
}

TEST(EventLoopTransport, OversizedFrameClosesConnection) {
    obs::MetricsRegistry registry;
    EventLoopConfig config;
    config.max_frame_bytes = 1024;
    LoopRunner runner{config};
    runner.transport.set_metrics(&registry);
    runner.transport.set_delivery_handler([](NodeId, const Message&) {});
    runner.start();

    TestClient client(runner.transport.local_port());
    ASSERT_TRUE(client.connected());
    // A frame whose header claims 2 KB: must be rejected on the prefix
    // alone, before any payload-sized allocation.
    const std::uint8_t prefix[4] = {0x00, 0x08, 0x00, 0x00};
    client.send_bytes(prefix, sizeof(prefix));

    EXPECT_TRUE(client.closed_by_peer(2000ms));
    EXPECT_EQ(
        registry.counter(obs::names::kTransportOversizedFrames).value(), 1u);
}

TEST(EventLoopTransport, MalformedFrameClosesConnection) {
    obs::MetricsRegistry registry;
    LoopRunner runner{EventLoopConfig{}};
    runner.transport.set_metrics(&registry);
    runner.transport.set_delivery_handler([](NodeId, const Message&) {});
    runner.start();

    TestClient client(runner.transport.local_port());
    ASSERT_TRUE(client.connected());
    const std::uint8_t garbage[8] = {0x04, 0x00, 0x00, 0x00,  // length 4
                                     0xDE, 0xAD, 0xBE, 0xEF};
    client.send_bytes(garbage, sizeof(garbage));

    EXPECT_TRUE(client.closed_by_peer(2000ms));
    EXPECT_EQ(registry.counter(obs::names::kTransportDecodeErrors).value(),
              1u);
}

TEST(EventLoopTransport, WriteQueueBackpressureShedsFrames) {
    obs::MetricsRegistry registry;
    EventLoopConfig config;
    config.write_queue_limit_bytes = 64 * 1024;
    LoopRunner runner{config};
    auto& transport = runner.transport;
    transport.set_metrics(&registry);
    const std::string blob(16 * 1024, 'b');
    transport.set_delivery_handler([&](NodeId, const Message& message) {
        if (message.type != "req") return;
        // 32 × 16 KB against a 64 KB queue limit, enqueued back-to-back
        // within one handler call — before the reactor flushes anything —
        // so only the first few frames fit and the rest must be shed
        // rather than queued without bound.
        for (int i = 0; i < 32; ++i) {
            Message reply;
            reply.type = "handover";
            reply.size_bytes = static_cast<std::uint32_t>(blob.size());
            reply.payload = ariadne::msg::Handover{blob};
            transport.unicast(0, message.source, std::move(reply));
        }
    });
    runner.start();

    TestClient client(transport.local_port());
    ASSERT_TRUE(client.connected());
    ariadne::wire::WireMessage request;
    request.type = ariadne::wire::MsgType::kRequest;
    request.payload = ariadne::wire::Request{1, 0, "<request/>"};
    client.send_frame(request);

    const auto reply = client.read_frame();  // the frame that fit
    ASSERT_EQ(reply.type, ariadne::wire::MsgType::kHandover);
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    auto& drops =
        registry.counter(obs::names::kTransportBackpressureDrops);
    while (drops.value() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_GT(drops.value(), 0u);
}

// --- SimTransport equivalence -------------------------------------------

encoding::KnowledgeBase make_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

/// One deterministic publish/discover run; returns (satisfied, stats,
/// registry counters) for comparison.
struct RunResult {
    bool satisfied = false;
    TrafficStats stats;
    std::uint64_t sim_unicasts = 0;
    std::uint64_t sim_deliveries = 0;
    std::uint64_t sim_bytes = 0;
};

RunResult run_scenario(ariadne::DiscoveryNetwork& network,
                       obs::MetricsRegistry& registry) {
    network.appoint_directory(4);
    network.start();
    network.run_for(100);
    network.publish_service(
        0, desc::serialize_service(th::workstation_service()));
    network.run_for(500);
    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(5000);

    RunResult result;
    result.satisfied = network.outcome(id).satisfied;
    result.stats = network.traffic();
    result.sim_unicasts = counter_value(registry, obs::names::kSimUnicasts);
    result.sim_deliveries =
        counter_value(registry, obs::names::kSimDeliveries);
    result.sim_bytes =
        counter_value(registry, obs::names::kSimBytesTransmitted);
    return result;
}

TEST(SimTransportEquivalence, ConvenienceCtorMatchesExplicitTransport) {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1000;
    config.election_wait_ms = 30;

    auto kb_a = make_kb();
    obs::MetricsRegistry registry_a;
    ariadne::DiscoveryNetwork convenience(Topology::grid(3, 3), config, kb_a,
                                          &registry_a);
    const RunResult via_convenience = run_scenario(convenience, registry_a);

    auto kb_b = make_kb();
    obs::MetricsRegistry registry_b;
    ariadne::DiscoveryNetwork explicit_transport(
        std::make_unique<ariadne::SimTransport>(Topology::grid(3, 3)), config,
        kb_b, &registry_b);
    const RunResult via_explicit = run_scenario(explicit_transport, registry_b);

    EXPECT_TRUE(via_convenience.satisfied);
    EXPECT_TRUE(via_explicit.satisfied);
    // Byte-identical replay: the convenience constructor is nothing but
    // SimTransport construction sugar, so every traffic quantity matches.
    EXPECT_EQ(via_convenience.stats, via_explicit.stats);
    EXPECT_EQ(via_convenience.sim_unicasts, via_explicit.sim_unicasts);
    EXPECT_EQ(via_convenience.sim_deliveries, via_explicit.sim_deliveries);
    EXPECT_EQ(via_convenience.sim_bytes, via_explicit.sim_bytes);
}

TEST(SimTransportEquivalence, TransportAccessorsForwardToSimulator) {
    auto kb = make_kb();
    ariadne::DiscoveryNetwork network(Topology::grid(2, 2),
                                     ariadne::ProtocolConfig{}, kb);
    EXPECT_EQ(network.node_count(), 4u);
    EXPECT_TRUE(network.idle());
    EXPECT_EQ(network.now(), ariadne::sim(network).now());
    // The escape hatch reaches the simulator for fault/topology control.
    ariadne::sim(network).topology().set_up(3, false);
    EXPECT_FALSE(network.transport().is_up(3));
}

}  // namespace
}  // namespace sariadne::net
