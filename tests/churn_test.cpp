// Failure injection: directory death, node churn, re-election, content
// recovery through periodic re-publication, and client retry — the
// pervasive-network dynamics the paper's election scheme targets.
#include <gtest/gtest.h>

#include <memory>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "description/amigos_io.hpp"
#include "test_helpers.hpp"

namespace sariadne::ariadne {
namespace {

namespace th = sariadne::testing;
using net::NodeId;
using net::Topology;

encoding::KnowledgeBase make_kb() {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    return kb;
}

ProtocolConfig churn_config() {
    ProtocolConfig config;
    config.protocol = Protocol::kSAriadne;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1200;
    config.election_wait_ms = 30;
    config.republish_period_ms = 2000;
    config.request_timeout_ms = 3000;
    config.max_request_retries = 3;
    return config;
}

TEST(Churn, DirectoryDeathTriggersReElection) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(3000);
    ASSERT_EQ(network.directories().size(), 1u);

    // The directory dies.
    sim(network).topology().set_up(4, false);
    network.run_for(10000);

    // A new directory must have been elected among the survivors.
    std::size_t live_directories = 0;
    for (const NodeId dir : network.directories()) {
        if (sim(network).topology().is_up(dir)) ++live_directories;
    }
    EXPECT_GE(live_directories, 1u);
}

TEST(Churn, ContentRecoversViaRepublication) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(500);

    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(1000);

    // Kill the directory holding the only copy of the advertisement.
    sim(network).topology().set_up(4, false);
    network.run_for(15000);  // re-election + periodic re-publish

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(15000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied)
        << "advertisement should have been re-published to the new directory";
}

TEST(Churn, ClientRetriesUnansweredRequest) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(500);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(1000);

    // Issue the request, then immediately kill the directory so the first
    // attempt dies in flight; the retry must land on the re-elected one.
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    sim(network).topology().set_up(4, false);
    network.run_for(30000);

    const DiscoveryOutcome& outcome = network.outcome(id);
    EXPECT_TRUE(outcome.answered) << "retry should reach the new directory";
    if (outcome.answered) {
        EXPECT_TRUE(outcome.satisfied);
    }
}

TEST(Churn, RecoveredDirectoryResumesAdvertising) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(1000);

    sim(network).topology().set_up(4, false);
    network.run_for(3000);
    sim(network).topology().set_up(4, true);
    network.run_for(3000);

    // Node 4 is a directory again (never stopped being one) and must be
    // advertising; at least one directory is reachable from every node.
    EXPECT_TRUE(network.is_directory(4));
    for (NodeId n = 0; n < 9; ++n) {
        EXPECT_NE(network.directory_for(n), net::kNoNode) << "node " << n;
    }
}

TEST(Churn, ProviderChurnDoesNotCrashRepublication) {
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(500);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    // Provider flaps repeatedly while its republish timer runs.
    for (int i = 0; i < 4; ++i) {
        sim(network).topology().set_up(0, false);
        network.run_for(2500);
        sim(network).topology().set_up(0, true);
        network.run_for(2500);
    }
    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(10000);
    EXPECT_TRUE(network.outcome(id).answered);
    EXPECT_TRUE(network.outcome(id).satisfied);
}

TEST(Churn, LastDirectoryHandoverLossIsHealedByRepublication) {
    // resign_directory's last-directory path: the resigning node parks its
    // exported state in pending_handover, triggers an election, and ships
    // the handover when the successor's dir-adv arrives. If that single
    // handover message is lost, the successor starts empty — the periodic
    // provider republish is the safety net that must repopulate it.
    auto kb = make_kb();
    DiscoveryNetwork network(Topology::grid(3, 3), churn_config(), kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(500);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(1000);

    // Every handover dies in flight (there is exactly one per resignation).
    auto dropped = std::make_shared<int>(0);
    net::FaultPlan plan;
    plan.drop = [dropped](net::NodeId, net::NodeId, const net::Message& msg) {
        if (msg.type != "handover") return false;
        ++*dropped;
        return true;
    };
    sim(network).set_faults(std::move(plan));

    network.resign_directory(4);  // last directory: election + handover
    network.run_for(15000);       // re-election + periodic republish

    EXPECT_GE(*dropped, 1) << "the handover path was never exercised";
    ASSERT_FALSE(network.directories().empty());
    EXPECT_FALSE(network.is_directory(4));

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(15000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied)
        << "republication should have repopulated the successor directory";
}

TEST(Churn, RepublicationDeduplicatesInDirectory) {
    auto kb = make_kb();
    ProtocolConfig config = churn_config();
    config.republish_period_ms = 500;  // aggressive re-advertisement
    DiscoveryNetwork network(Topology::grid(3, 3), config, kb);
    network.appoint_directory(4);
    network.start();
    network.run_for(200);
    network.publish_service(0,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(5000);  // ~10 republications

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(8, desc::serialize_request(request));
    network.run_for(3000);
    const DiscoveryOutcome& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    ASSERT_TRUE(outcome.satisfied);
    // Exactly one hit: the directory replaced, not duplicated, the entry.
    EXPECT_EQ(outcome.hits.size(), 1u);
}

}  // namespace
}  // namespace sariadne::ariadne
