#include <memory>

#include <gtest/gtest.h>

#include "ontology/ontology.hpp"
#include "reasoner/profiles.hpp"
#include "reasoner/reasoner.hpp"
#include "reasoner/taxonomy_cache.hpp"
#include "support/errors.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"

namespace sariadne::reasoner {
namespace {

using onto::ConceptId;
using onto::Ontology;

std::unique_ptr<Reasoner> make_engine(int which) {
    switch (which) {
        case 0: return std::make_unique<NaiveClosureReasoner>();
        case 1: return std::make_unique<RuleReasoner>();
        default: return std::make_unique<TableauLiteReasoner>();
    }
}

class AllEngines : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Engines, AllEngines, ::testing::Values(0, 1, 2),
                         [](const auto& param_info) {
                             switch (param_info.param) {
                                 case 0: return "NaiveClosure";
                                 case 1: return "RuleForward";
                                 default: return "TableauLite";
                             }
                         });

TEST_P(AllEngines, ToldSubsumptionAndTransitivity) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_subclass_of(b, a);
    o.add_subclass_of(c, b);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_TRUE(tax.subsumes(a, a));
    EXPECT_TRUE(tax.subsumes(a, b));
    EXPECT_TRUE(tax.subsumes(a, c));
    EXPECT_TRUE(tax.subsumes(b, c));
    EXPECT_FALSE(tax.subsumes(c, a));
    EXPECT_FALSE(tax.subsumes(b, a));
}

TEST_P(AllEngines, DistanceCountsLevels) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    const auto d = o.add_class("D");
    o.add_subclass_of(b, a);
    o.add_subclass_of(c, b);
    o.add_subclass_of(d, c);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.distance(a, a), 0);
    EXPECT_EQ(tax.distance(a, b), 1);
    EXPECT_EQ(tax.distance(a, d), 3);
    EXPECT_EQ(tax.distance(b, d), 2);
    EXPECT_EQ(tax.distance(d, a), std::nullopt);
}

TEST_P(AllEngines, DistanceMeasuredInReducedHierarchy) {
    // Told shortcut A→C is redundant next to A→B→C; classification removes
    // it (transitive reduction), so the level distance d(A, C) is 2 — the
    // paper's "number of levels in the classified hierarchy".
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_subclass_of(b, a);
    o.add_subclass_of(c, b);
    o.add_subclass_of(c, a);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.distance(a, c), 2);
    ASSERT_EQ(tax.direct_parents(c).size(), 1u);  // only B remains direct
    EXPECT_EQ(tax.direct_parents(c)[0], tax.canonical(b));
}

TEST_P(AllEngines, DistanceTakesShortestGenuinePath) {
    // True multi-parent: C below both B (itself below A) and A's sibling R;
    // both edges are irredundant, so d(Top, C) is the minimum path.
    Ontology o("u");
    const auto top = o.add_class("Top");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto r = o.add_class("R");
    const auto c = o.add_class("C");
    o.add_subclass_of(a, top);
    o.add_subclass_of(r, top);
    o.add_subclass_of(b, a);
    o.add_subclass_of(c, b);
    o.add_subclass_of(c, r);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.distance(top, c), 2);  // Top→R→C beats Top→A→B→C
    EXPECT_EQ(tax.direct_parents(c).size(), 2u);
}

TEST_P(AllEngines, EquivalenceMergesIntoOneVertex) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_equivalent(a, b);
    o.add_subclass_of(c, b);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.canonical(a), tax.canonical(b));
    EXPECT_TRUE(tax.subsumes(a, b));
    EXPECT_TRUE(tax.subsumes(b, a));
    EXPECT_EQ(tax.distance(a, b), 0);
    EXPECT_TRUE(tax.subsumes(a, c));
    EXPECT_EQ(tax.distance(a, c), 1);
    EXPECT_EQ(tax.representative_count(), 2u);
}

TEST_P(AllEngines, SubsumptionCycleCollapses) {
    // A ⊑ B ⊑ C ⊑ A told cycle: all three are equivalent.
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    o.add_subclass_of(a, b);
    o.add_subclass_of(b, c);
    o.add_subclass_of(c, a);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.canonical(a), tax.canonical(b));
    EXPECT_EQ(tax.canonical(b), tax.canonical(c));
    EXPECT_EQ(tax.distance(a, c), 0);
}

TEST_P(AllEngines, IntersectionIntroduction) {
    // D ≡ A ⊓ B; X ⊑ A, X ⊑ B  ⇒  X ⊑ D.
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto d = o.add_class("D");
    const auto x = o.add_class("X");
    o.define_intersection(d, {a, b});
    o.add_subclass_of(x, a);
    o.add_subclass_of(x, b);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_TRUE(tax.subsumes(d, x));
    EXPECT_TRUE(tax.subsumes(a, d));
    EXPECT_TRUE(tax.subsumes(b, d));
    EXPECT_FALSE(tax.subsumes(d, a));
}

TEST_P(AllEngines, ChainedIntersectionIntroduction) {
    // D1 ≡ A ⊓ B, D2 ≡ D1 ⊓ C; X below A, B, C must reach D2.
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    const auto d1 = o.add_class("D1");
    const auto d2 = o.add_class("D2");
    const auto x = o.add_class("X");
    o.define_intersection(d1, {a, b});
    o.define_intersection(d2, {d1, c});
    o.add_subclass_of(x, a);
    o.add_subclass_of(x, b);
    o.add_subclass_of(x, c);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_TRUE(tax.subsumes(d1, x));
    EXPECT_TRUE(tax.subsumes(d2, x));
}

TEST_P(AllEngines, IntersectionOfComparablePartsCreatesEquivalence) {
    // B ⊑ A and D ≡ A ⊓ B: D is equivalent to B.
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto d = o.add_class("D");
    o.add_subclass_of(b, a);
    o.define_intersection(d, {a, b});

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    EXPECT_EQ(tax.canonical(d), tax.canonical(b));
}

TEST_P(AllEngines, DisjointnessViolationThrows) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto x = o.add_class("X");
    o.add_disjoint(a, b);
    o.add_subclass_of(x, a);
    o.add_subclass_of(x, b);
    auto engine = make_engine(GetParam());
    EXPECT_THROW(engine->classify(o), InconsistencyError);
}

TEST_P(AllEngines, DirectDisjointSubsumptionThrows) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    o.add_disjoint(a, b);
    o.add_subclass_of(a, b);
    auto engine = make_engine(GetParam());
    EXPECT_THROW(engine->classify(o), InconsistencyError);
}

TEST_P(AllEngines, ConsistentDisjointSiblingsPass) {
    const Taxonomy tax =
        make_engine(GetParam())->classify(sariadne::testing::media_ontology());
    EXPECT_GT(tax.representative_count(), 0u);
}

TEST_P(AllEngines, RootsAndDepths) {
    Ontology o("u");
    const auto a = o.add_class("A");
    const auto b = o.add_class("B");
    const auto c = o.add_class("C");
    const auto other = o.add_class("Other");
    o.add_subclass_of(b, a);
    o.add_subclass_of(c, b);

    const Taxonomy tax = make_engine(GetParam())->classify(o);
    const auto roots = tax.roots();
    EXPECT_EQ(roots.size(), 2u);  // A and Other
    EXPECT_EQ(tax.depth(a), 0);
    EXPECT_EQ(tax.depth(other), 0);
    EXPECT_EQ(tax.depth(b), 1);
    EXPECT_EQ(tax.depth(c), 2);
}

TEST_P(AllEngines, StatsAreRecorded) {
    auto engine = make_engine(GetParam());
    (void)engine->classify(sariadne::testing::server_ontology());
    EXPECT_GT(engine->last_stats().facts_derived, 0u);
}

// Property: the three engines agree bit-for-bit on randomized ontologies.
class EngineAgreement : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Range(0, 12));

TEST_P(EngineAgreement, AllEnginesProduceIdenticalTaxonomies) {
    workload::OntologyGenConfig config;
    config.class_count = 30 + GetParam() * 5;
    config.alias_count = 2;
    config.intersection_count = (GetParam() % 2 == 0) ? 3 : 0;
    config.multi_parent_rate = (GetParam() % 3 == 0) ? 0.2 : 0.0;
    config.disjoint_pairs = (config.intersection_count > 0 ||
                             config.multi_parent_rate > 0)
                                ? 0
                                : 2;
    Rng rng(1000 + GetParam());
    const Ontology o = workload::generate_ontology("u", config, rng);

    NaiveClosureReasoner naive;
    RuleReasoner rule;
    TableauLiteReasoner tableau;
    const Taxonomy t1 = naive.classify(o);
    const Taxonomy t2 = rule.classify(o);
    const Taxonomy t3 = tableau.classify(o);

    for (ConceptId a = 0; a < o.class_count(); ++a) {
        EXPECT_EQ(t1.canonical(a), t2.canonical(a));
        EXPECT_EQ(t1.canonical(a), t3.canonical(a));
        for (ConceptId b = 0; b < o.class_count(); ++b) {
            ASSERT_EQ(t1.subsumes(a, b), t2.subsumes(a, b))
                << "naive vs rule disagree on (" << o.class_name(a) << ", "
                << o.class_name(b) << ")";
            ASSERT_EQ(t1.subsumes(a, b), t3.subsumes(a, b))
                << "naive vs tableau disagree on (" << o.class_name(a) << ", "
                << o.class_name(b) << ")";
            ASSERT_EQ(t1.distance(a, b), t2.distance(a, b));
            ASSERT_EQ(t1.distance(a, b), t3.distance(a, b));
        }
    }
}

TEST(TaxonomyCache, ClassifiesOncePerVersion) {
    onto::OntologyRegistry registry;
    const auto index = registry.add(sariadne::testing::media_ontology());
    TaxonomyCache cache;
    (void)cache.taxonomy_of(registry.at(index));
    (void)cache.taxonomy_of(registry.at(index));
    EXPECT_EQ(cache.classifications(), 1u);

    onto::Ontology v2 = sariadne::testing::media_ontology();
    v2.set_version(2);
    registry.add(std::move(v2));
    (void)cache.taxonomy_of(registry.at(index));
    EXPECT_EQ(cache.classifications(), 2u);
}

TEST(Profiles, Fig2CostStructure) {
    const onto::Ontology fig2 = workload::fig2_ontology();
    std::vector<DlReasonerProfile> profiles;
    profiles.push_back(DlReasonerProfile::racer_like());
    profiles.push_back(DlReasonerProfile::factpp_like());
    profiles.push_back(DlReasonerProfile::pellet_like());
    for (auto& profile : profiles) {
        const auto cost = profile.model_match(fig2, /*match_queries=*/11);
        // The paper: 4-5 s total, 76-78 % in load+classify.
        EXPECT_GT(cost.total_ms(), 3500.0) << profile.name();
        EXPECT_LT(cost.total_ms(), 5500.0) << profile.name();
        EXPECT_GT(cost.load_fraction(), 0.70) << profile.name();
        EXPECT_LT(cost.load_fraction(), 0.85) << profile.name();
    }
}

TEST(Fig2Ontology, HasPublishedShape) {
    const onto::Ontology fig2 = workload::fig2_ontology();
    EXPECT_EQ(fig2.class_count(), 99u);
    EXPECT_EQ(fig2.property_count(), 39u);
}

}  // namespace
}  // namespace sariadne::reasoner
