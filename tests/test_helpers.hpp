// Shared fixtures: the paper's Figure 1 scenario (a PDA requesting
// GetVideoStream, a workstation providing SendDigitalStream and
// ProvideGame over media-resource and server ontologies) plus small
// utilities used across suites.
#pragma once

#include <string>

#include "description/capability.hpp"
#include "description/service.hpp"
#include "ontology/ontology.hpp"

namespace sariadne::testing {

inline constexpr const char* kMediaUri = "http://amigo.example/onto/media";
inline constexpr const char* kServerUri = "http://amigo.example/onto/server";

/// Media resource ontology of Figure 1:
///   Resource
///     DigitalResource
///       VideoResource   (MovieResource below it)
///       SoundResource
///       GameResource
///   Stream
///     VideoStream
inline onto::Ontology media_ontology() {
    onto::Ontology o(kMediaUri);
    const auto resource = o.add_class("Resource");
    const auto digital = o.add_class("DigitalResource");
    const auto video = o.add_class("VideoResource");
    const auto sound = o.add_class("SoundResource");
    const auto game = o.add_class("GameResource");
    const auto movie = o.add_class("MovieResource");
    const auto stream = o.add_class("Stream");
    const auto video_stream = o.add_class("VideoStream");
    o.add_subclass_of(digital, resource);
    o.add_subclass_of(video, digital);
    o.add_subclass_of(sound, digital);
    o.add_subclass_of(game, digital);
    o.add_subclass_of(movie, video);
    o.add_subclass_of(video_stream, stream);
    o.add_disjoint(video, sound);
    const auto title = o.add_class("Title");
    const auto has_title = o.add_property("hasTitle");
    o.set_property_domain(has_title, resource);
    o.set_property_range(has_title, title);
    return o;
}

/// Server category ontology of Figure 1:
///   Server
///     DigitalServer
///       MediaServer
///         VideoServer
///       GameServer
inline onto::Ontology server_ontology() {
    onto::Ontology o(kServerUri);
    const auto server = o.add_class("Server");
    const auto digital = o.add_class("DigitalServer");
    const auto media = o.add_class("MediaServer");
    const auto video = o.add_class("VideoServer");
    const auto game = o.add_class("GameServer");
    o.add_subclass_of(digital, server);
    o.add_subclass_of(media, digital);
    o.add_subclass_of(video, media);
    o.add_subclass_of(game, digital);
    return o;
}

inline std::string media(const char* local) {
    return std::string(kMediaUri) + "#" + local;
}

inline std::string server(const char* local) {
    return std::string(kServerUri) + "#" + local;
}

/// The workstation's generic capability: category DigitalServer, expects a
/// DigitalResource, offers a Stream.
inline desc::Capability send_digital_stream() {
    desc::Capability cap;
    cap.name = "SendDigitalStream";
    cap.kind = desc::CapabilityKind::kProvided;
    cap.category_qname = server("DigitalServer");
    cap.inputs.push_back(desc::Parameter{"resource", media("DigitalResource")});
    cap.outputs.push_back(desc::Parameter{"stream", media("Stream")});
    return cap;
}

/// The workstation's second capability: category GameServer, expects a
/// GameResource, offers a Stream.
inline desc::Capability provide_game() {
    desc::Capability cap;
    cap.name = "ProvideGame";
    cap.kind = desc::CapabilityKind::kProvided;
    cap.category_qname = server("GameServer");
    cap.inputs.push_back(desc::Parameter{"game", media("GameResource")});
    cap.outputs.push_back(desc::Parameter{"stream", media("Stream")});
    return cap;
}

/// The PDA's requested capability: category VideoServer, offers a
/// VideoResource title, expects a Stream.
inline desc::Capability get_video_stream() {
    desc::Capability cap;
    cap.name = "GetVideoStream";
    cap.kind = desc::CapabilityKind::kRequired;
    cap.category_qname = server("VideoServer");
    cap.inputs.push_back(desc::Parameter{"title", media("VideoResource")});
    cap.outputs.push_back(desc::Parameter{"stream", media("Stream")});
    return cap;
}

/// Workstation service description holding both provided capabilities.
inline desc::ServiceDescription workstation_service() {
    desc::ServiceDescription service;
    service.profile.service_name = "Workstation";
    service.profile.provider = "amigo-home";
    service.middleware = "WS";
    service.grounding.protocol = "SOAP";
    service.grounding.address = "http://workstation.local/media";
    service.profile.capabilities.push_back(send_digital_stream());
    service.profile.capabilities.push_back(provide_game());
    return service;
}

}  // namespace sariadne::testing
