// Differential coverage for the flat-layout matching fast path: the packed
// CodeTable kernels, the batched CodeSignature matcher and the DAG
// quick-reject summaries must be *observationally identical* to the
// pre-existing oracle path and to the TaxonomyOracle reference (reasoner
// BFS, no interval codes) on randomized workloads. Any divergence — match
// verdict, semantic distance, query results, even the concept-query
// counters — is a bug in the fast path.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "description/resolved.hpp"
#include "directory/dag.hpp"
#include "directory/semantic_directory.hpp"
#include "matching/oracles.hpp"
#include "reasoner/taxonomy_cache.hpp"
#include "test_helpers.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

namespace sariadne::directory {
namespace {

namespace th = sariadne::testing;

struct World {
    encoding::KnowledgeBase kb;  // must precede workload (fill order)
    workload::ServiceWorkload workload;

    World(std::size_t ontologies, std::size_t classes, unsigned seed)
        : workload(make_universe(ontologies, classes, seed, kb)) {}

private:
    static std::vector<onto::Ontology> make_universe(std::size_t ontologies,
                                                     std::size_t classes,
                                                     unsigned seed,
                                                     encoding::KnowledgeBase& kb) {
        workload::OntologyGenConfig config;
        config.class_count = classes;
        auto universe = workload::generate_universe(ontologies, config, seed);
        for (const auto& o : universe) kb.register_ontology(o);
        return universe;
    }
};

/// Signed (CodeSignature attached) and plain resolutions of one capability.
struct CapPair {
    desc::ResolvedCapability with_signature;
    desc::ResolvedCapability plain;
};

std::vector<CapPair> resolved_pairs(World& world, std::size_t services) {
    std::vector<CapPair> pairs;
    for (std::size_t i = 0; i < services; ++i) {
        const auto service = world.workload.service(i);
        auto fast = desc::resolve_provided(service, world.kb);
        auto slow = desc::resolve_provided(service, world.kb.registry());
        EXPECT_EQ(fast.size(), slow.size());
        for (std::size_t c = 0; c < fast.size(); ++c) {
            pairs.push_back(
                CapPair{std::move(fast[c]), std::move(slow[c])});
        }
    }
    return pairs;
}

std::vector<CapPair> request_pairs(World& world, std::size_t count) {
    std::vector<CapPair> pairs;
    for (std::size_t i = 0; i < count; ++i) {
        const auto request = world.workload.matching_request(i);
        auto fast = desc::resolve_request(request, world.kb);
        auto slow = desc::resolve_request(request, world.kb.registry());
        EXPECT_EQ(fast.size(), slow.size());
        for (std::size_t c = 0; c < fast.size(); ++c) {
            pairs.push_back(
                CapPair{std::move(fast[c]), std::move(slow[c])});
        }
    }
    return pairs;
}

TEST(Differential, PackedTableAgreesWithTaxonomyOnEveryConceptPair) {
    World world(6, 26, 1234);
    for (onto::OntologyIndex o = 0; o < world.kb.registry().size(); ++o) {
        const encoding::CodeTable& table = world.kb.code_table(o);
        const reasoner::Taxonomy& taxonomy = world.kb.taxonomy(o);
        const auto n = static_cast<onto::ConceptId>(table.class_count());
        for (onto::ConceptId a = 0; a < n; ++a) {
            for (onto::ConceptId b = 0; b < n; ++b) {
                const auto coded = table.distance(a, b);
                const auto reference = taxonomy.distance(a, b);
                ASSERT_EQ(coded.has_value(), reference.has_value())
                    << "ontology " << o << " pair (" << a << ", " << b << ")";
                if (coded) {
                    ASSERT_EQ(*coded, *reference)
                        << "ontology " << o << " pair (" << a << ", " << b
                        << ")";
                }
                ASSERT_EQ(table.subsumes(a, b), coded.has_value());
            }
        }
    }
}

TEST(Differential, BatchedKernelMatchesOraclePathAndTaxonomyReference) {
    World world(5, 24, 777);
    const auto providers = resolved_pairs(world, 25);
    const auto requests = request_pairs(world, 25);
    reasoner::TaxonomyCache taxonomies;

    std::size_t matched = 0;
    for (const CapPair& p : providers) {
        ASSERT_TRUE(p.with_signature.signature.valid);
        for (const CapPair& r : requests) {
            matching::EncodedOracle fast(world.kb);
            matching::EncodedOracle slow(world.kb);
            matching::TaxonomyOracle reference(world.kb.registry(), taxonomies);
            const auto a = matching::match_capability(p.with_signature,
                                                      r.with_signature, fast);
            const auto b =
                matching::match_capability(p.plain, r.plain, slow);
            const auto c =
                matching::match_capability(p.plain, r.plain, reference);
            ASSERT_EQ(a.matched, b.matched) << p.plain.name << " vs "
                                            << r.plain.name;
            ASSERT_EQ(a.matched, c.matched) << p.plain.name << " vs "
                                            << r.plain.name;
            if (a.matched) {
                ASSERT_EQ(a.semantic_distance, b.semantic_distance);
                ASSERT_EQ(a.semantic_distance, c.semantic_distance);
            }
            // Stat parity: the batched kernel reports exactly the concept
            // pairs the per-pair oracle path would have evaluated.
            ASSERT_EQ(fast.queries(), slow.queries())
                << p.plain.name << " vs " << r.plain.name;
            matched += a.matched ? 1 : 0;
        }
    }
    // The workload guarantees matching requests exist, so the test really
    // exercised both verdicts.
    EXPECT_GT(matched, 0u);
    EXPECT_LT(matched, providers.size() * requests.size());
}

TEST(Differential, QuickRejectNeverRejectsARealMatch) {
    World world(5, 24, 909);
    const auto providers = resolved_pairs(world, 30);
    const auto requests = request_pairs(world, 30);
    reasoner::TaxonomyCache taxonomies;
    matching::EncodedOracle tagger(world.kb);

    const std::uint64_t env = tagger.global_environment_tag();
    ASSERT_NE(env, 0u);
    std::size_t rejects = 0;
    for (const CapPair& p : providers) {
        const MatchSummary ps = make_match_summary(p.with_signature);
        const bool p_fresh = ps.code_tag == env;
        ASSERT_TRUE(p_fresh);
        for (const CapPair& r : requests) {
            const MatchSummary rs = make_match_summary(r.with_signature);
            const bool fresh = p_fresh && rs.code_tag == env;
            if (!quick_reject(ps, rs, fresh)) continue;
            ++rejects;
            matching::TaxonomyOracle reference(world.kb.registry(), taxonomies);
            ASSERT_FALSE(
                matching::matches(p.plain, r.plain, reference))
                << "quick_reject dropped a real match: " << p.plain.name
                << " vs " << r.plain.name;
        }
    }
    // The sweep must actually exercise rejection (cross-ontology pairs
    // abound in this workload).
    EXPECT_GT(rejects, 0u);
}

TEST(Differential, DirectoryQueryAgreesWithTaxonomyBruteForce) {
    World world(6, 24, 555);
    constexpr std::size_t kServices = 50;

    SemanticDirectory directory(world.kb);
    for (std::size_t i = 0; i < kServices; ++i) {
        directory.publish(world.workload.service(i));
    }

    // Reference corpus: every provided capability, resolved without
    // signatures, matched by the reasoner-backed oracle.
    std::vector<desc::ResolvedCapability> corpus;
    for (std::size_t i = 0; i < kServices; ++i) {
        for (auto& cap : desc::resolve_provided(world.workload.service(i),
                                                world.kb.registry())) {
            corpus.push_back(std::move(cap));
        }
    }
    reasoner::TaxonomyCache taxonomies;

    using Hit = std::tuple<std::string, std::string, int>;
    for (std::size_t i = 0; i < kServices; i += 3) {
        const auto resolved = desc::resolve_request(
            world.workload.matching_request(i), world.kb.registry());
        const auto result = directory.query_resolved(resolved);
        ASSERT_EQ(result.per_capability.size(), resolved.size());

        for (std::size_t c = 0; c < resolved.size(); ++c) {
            // Brute-force best tier under the taxonomy reference.
            matching::TaxonomyOracle reference(world.kb.registry(), taxonomies);
            std::vector<Hit> expected;
            int best = -1;
            for (const auto& cap : corpus) {
                const auto outcome =
                    matching::match_capability(cap, resolved[c], reference);
                if (!outcome.matched) continue;
                if (best < 0 || outcome.semantic_distance < best) {
                    best = outcome.semantic_distance;
                    expected.clear();
                }
                if (outcome.semantic_distance == best) {
                    expected.emplace_back(cap.service_name, cap.name, best);
                }
            }
            std::vector<Hit> actual;
            for (const MatchHit& hit : result.per_capability[c]) {
                actual.emplace_back(hit.service_name, hit.capability_name,
                                    hit.semantic_distance);
            }
            std::sort(expected.begin(), expected.end());
            std::sort(actual.begin(), actual.end());
            ASSERT_EQ(actual, expected) << "request " << i << " capability "
                                        << c;
        }
    }
}

TEST(Differential, TopKIsADeterministicPrefixOfTheFullRanking) {
    World world(4, 24, 31337);
    SemanticDirectory directory(world.kb);
    for (std::size_t i = 0; i < 40; ++i) {
        directory.publish(world.workload.service(i));
    }
    for (std::size_t i = 0; i < 40; i += 5) {
        const auto resolved = desc::resolve_request(
            world.workload.matching_request(i), world.kb.registry());
        QueryOptions all_options;
        all_options.top_k = 1000;  // larger than any hit list
        const auto all = directory.query_resolved(resolved, all_options);
        QueryOptions top_options;
        top_options.top_k = 3;
        const auto top = directory.query_resolved(resolved, top_options);
        ASSERT_EQ(all.per_capability.size(), top.per_capability.size());
        for (std::size_t c = 0; c < all.per_capability.size(); ++c) {
            const auto& full = all.per_capability[c];
            const auto& prefix = top.per_capability[c];
            ASSERT_EQ(prefix.size(), std::min<std::size_t>(3, full.size()));
            for (std::size_t k = 0; k < prefix.size(); ++k) {
                EXPECT_EQ(prefix[k].service, full[k].service);
                EXPECT_EQ(prefix[k].capability_name, full[k].capability_name);
                EXPECT_EQ(prefix[k].semantic_distance,
                          full[k].semantic_distance);
            }
            // The full ranking is sorted by the documented tie-break.
            for (std::size_t k = 1; k < full.size(); ++k) {
                const auto rank = [](const MatchHit& h) {
                    return std::make_tuple(h.semantic_distance, h.service,
                                           h.capability_name);
                };
                EXPECT_LE(rank(full[k - 1]), rank(full[k]));
            }
        }
    }
}

TEST(Differential, BoundedHeapTopKMatchesPartialSortForEveryK) {
    // The top-k selector is a bounded max-heap (replace-root on a full
    // heap, sort_heap at the end). This sweep pins it element-for-element
    // to the selection partial_sort would make on the full ranking, for
    // every k from 1 through past the hit-list size — the heap and the
    // sort must agree not just on the set but on the order, including ties
    // broken by (distance, service, capability_name).
    World world(4, 24, 90210);
    SemanticDirectory directory(world.kb);
    for (std::size_t i = 0; i < 40; ++i) {
        directory.publish(world.workload.service(i));
    }
    const auto rank = [](const MatchHit& h) {
        return std::make_tuple(h.semantic_distance, h.service,
                               h.capability_name);
    };
    for (std::size_t i = 0; i < 40; i += 7) {
        const auto resolved = desc::resolve_request(
            world.workload.matching_request(i), world.kb.registry());
        QueryOptions all_options;
        all_options.top_k = 100000;  // larger than any hit list
        const auto all = directory.query_resolved(resolved, all_options);
        for (std::size_t c = 0; c < all.per_capability.size(); ++c) {
            std::vector<MatchHit> reference(all.per_capability[c].begin(),
                                            all.per_capability[c].end());
            for (std::size_t k = 1; k <= reference.size() + 2; ++k) {
                std::vector<MatchHit> expected = reference;
                std::partial_sort(
                    expected.begin(),
                    expected.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::min(k, expected.size())),
                    expected.end(),
                    [&](const MatchHit& a, const MatchHit& b) {
                        return rank(a) < rank(b);
                    });
                expected.resize(std::min(k, expected.size()));

                QueryOptions top_options;
                top_options.top_k = k;
                const auto top =
                    directory.query_resolved(resolved, top_options);
                ASSERT_LT(c, top.per_capability.size());
                const auto& actual = top.per_capability[c];
                ASSERT_EQ(actual.size(), expected.size())
                    << "request " << i << " capability " << c << " k=" << k;
                for (std::size_t h = 0; h < expected.size(); ++h) {
                    EXPECT_EQ(rank(actual[h]), rank(expected[h]))
                        << "request " << i << " capability " << c
                        << " k=" << k << " position " << h;
                }
                // k == 1 is the min-scan degenerate case: the single hit
                // must be the global rank minimum, exactly what a
                // first-hit min scan over the raw hits would keep.
                if (k == 1 && !expected.empty()) {
                    const auto min_it = std::min_element(
                        reference.begin(), reference.end(),
                        [&](const MatchHit& a, const MatchHit& b) {
                            return rank(a) < rank(b);
                        });
                    EXPECT_EQ(rank(actual[0]), rank(*min_it));
                }
            }
        }
    }
}

TEST(Differential, QuickRejectPrunesSiblingCategoriesInsideOneDag) {
    // Figure 1 world: the workstation provides SendDigitalStream
    // (DigitalServer, the DAG root) and ProvideGame (GameServer, its
    // child). A VideoServer request matches the root at distance 3 but can
    // never match the GameServer branch, and with fresh signatures on both
    // sides that mismatch is visible on interval boxes alone — the child
    // vertex is skipped without a Match evaluation.
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());
    SemanticDirectory directory(kb);
    directory.publish(th::workstation_service());

    desc::ServiceRequest request;
    request.requester = "pda";
    request.capabilities.push_back(th::get_video_stream());

    const auto result = directory.query(request);
    ASSERT_EQ(result.per_capability.size(), 1u);
    ASSERT_EQ(result.per_capability[0].size(), 1u);
    EXPECT_EQ(result.per_capability[0][0].capability_name,
              "SendDigitalStream");
    EXPECT_EQ(result.per_capability[0][0].semantic_distance, 3);
    EXPECT_GE(result.stats.quick_rejects, 1u);
}

// ---------------------------------------------------------------------------
// Galloped interval kernels vs the linear merge they replace.
// ---------------------------------------------------------------------------

/// Random occurrence list satisfying the kernel preconditions — sorted by
/// lo, pairwise disjoint (so hi is non-decreasing too) — with occasional
/// zero-width intervals standing in for exhausted encoding precision.
/// Cells sit on a shared 1/4096 grid so independently drawn lists produce
/// genuine containments, partial-overlap-free by construction.
std::vector<encoding::CodedInterval> random_occurrences(std::mt19937& rng,
                                                        std::size_t target) {
    constexpr double kCell = 1.0 / 4096.0;
    std::uniform_int_distribution<int> span_log(0, 6);
    std::uniform_int_distribution<int> coin(0, 9);
    std::vector<encoding::CodedInterval> out;
    std::size_t pos = 0;
    while (pos < 4096 && out.size() < target * 3) {
        const std::size_t span = std::size_t{1} << span_log(rng);
        if (coin(rng) < 2) {  // gap
            pos += span;
            continue;
        }
        encoding::CodedInterval ci;
        ci.interval.lo = static_cast<double>(pos) * kCell;
        const bool empty = coin(rng) == 0;
        ci.interval.hi =
            empty ? ci.interval.lo
                  : static_cast<double>(pos + std::min(span, 4096 - pos)) * kCell;
        ci.depth = 12 - span_log(rng) + coin(rng) % 3;
        out.push_back(ci);
        pos += span;
    }
    // Random subsequence down to the target length: a subsequence of a
    // sorted disjoint list is still sorted and disjoint.
    while (out.size() > target) {
        std::uniform_int_distribution<std::size_t> pick(0, out.size() - 1);
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pick(rng)));
    }
    return out;
}

TEST(Differential, GallopedKernelsMatchLinearOnEverySkew) {
    // The galloped skip phases must be observationally identical to the
    // linear merge on every size mix — balanced pairs (where the wrapper
    // dispatches linear), the skewed pairs that trip gallop_worthwhile,
    // and degenerate single-element lists that take the fast paths.
    const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
        {1, 1},   {1, 64},  {64, 1},  {3, 512}, {512, 3},
        {16, 16}, {2, 200}, {200, 2}, {48, 48}, {1, 500},
    };
    std::mt19937 rng(20260808);
    int containments = 0;
    for (const auto& [na, nb] : shapes) {
        for (int round = 0; round < 40; ++round) {
            const auto outer = random_occurrences(rng, na);
            const auto inner = random_occurrences(rng, nb);
            const bool lin = encoding::packed_contains_linear(
                outer.data(), outer.size(), inner.data(), inner.size());
            ASSERT_EQ(encoding::packed_contains_galloped(
                          outer.data(), outer.size(), inner.data(),
                          inner.size()),
                      lin)
                << "contains diverged at shape (" << na << ", " << nb << ")";
            ASSERT_EQ(encoding::packed_contains(outer.data(), outer.size(),
                                                inner.data(), inner.size()),
                      lin);
            const int lin_d = encoding::packed_distance_linear(
                outer.data(), outer.size(), inner.data(), inner.size());
            ASSERT_EQ(encoding::packed_distance_galloped(
                          outer.data(), outer.size(), inner.data(),
                          inner.size()),
                      lin_d)
                << "distance diverged at shape (" << na << ", " << nb << ")";
            ASSERT_EQ(encoding::packed_distance(outer.data(), outer.size(),
                                                inner.data(), inner.size()),
                      lin_d);
            containments += lin ? 1 : 0;
        }
    }
    // The sweep is only meaningful if both verdicts actually occur.
    EXPECT_GT(containments, 20);
}

TEST(Differential, GallopDispatchGateIsSizeDriven) {
    using encoding::gallop_worthwhile;
    EXPECT_FALSE(gallop_worthwhile(1, 1));
    EXPECT_FALSE(gallop_worthwhile(8, 8));
    EXPECT_FALSE(gallop_worthwhile(15, 1));   // longer side below minimum
    EXPECT_FALSE(gallop_worthwhile(64, 16));  // skew below the ratio
    EXPECT_TRUE(gallop_worthwhile(16, 2));
    EXPECT_TRUE(gallop_worthwhile(2, 16));    // symmetric
    EXPECT_TRUE(gallop_worthwhile(512, 3));
}

}  // namespace
}  // namespace sariadne::directory
