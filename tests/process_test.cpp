// Process-model (service conversation) tests: tree construction, XML
// round trips, and the regular-language compatibility decision.
#include <gtest/gtest.h>

#include "description/amigos_io.hpp"
#include "description/conversation.hpp"
#include "description/process.hpp"
#include "support/errors.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace sariadne::desc {
namespace {

Process a(const char* op) { return Process::atomic(op); }

TEST(Process, BuildersAndAlphabet) {
    const Process p = Process::sequence({
        a("browse"),
        Process::repeat(a("addItem")),
        Process::choice({a("checkout"), a("cancel")}),
    });
    const auto alphabet = p.alphabet();
    EXPECT_EQ(alphabet.size(), 4u);
    EXPECT_TRUE(std::find(alphabet.begin(), alphabet.end(), "addItem") !=
                alphabet.end());
}

TEST(Process, DeepCopyIsIndependent) {
    Process original = Process::sequence({a("x"), a("y")});
    Process copy = original;
    copy.children[0]->operation = "z";
    EXPECT_EQ(original.children[0]->operation, "x");
}

TEST(Process, XmlRoundTrip) {
    const Process p = Process::sequence({
        a("login"),
        Process::repeat(Process::choice({a("get"), a("put")})),
        a("logout"),
    });
    const xml::XmlNode node = serialize_process(p);
    const Process reloaded = parse_process(node);
    EXPECT_TRUE(conversation_equivalent(p, reloaded));
}

TEST(Process, ParserRejectsMalformedTrees) {
    EXPECT_THROW(parse_process(xml::parse("<process/>").root), ParseError);
    EXPECT_THROW(parse_process(
                     xml::parse("<process><choice/></process>").root),
                 ParseError);
    EXPECT_THROW(
        parse_process(
            xml::parse("<process><repeat><atomic op=\"a\"/><atomic op=\"b\"/>"
                       "</repeat></process>")
                .root),
        ParseError);
    EXPECT_THROW(parse_process(
                     xml::parse("<process><weird/></process>").root),
                 ParseError);
    EXPECT_THROW(parse_process(xml::parse("<wrong/>").root), ParseError);
}

TEST(Conversation, IdenticalProcessesAreCompatible) {
    const Process p = Process::sequence({a("x"), a("y")});
    EXPECT_TRUE(conversation_compatible(p, p));
    EXPECT_TRUE(conversation_equivalent(p, p));
}

TEST(Conversation, ClientSubsetOfProviderChoice) {
    // Client always checks out; provider allows checkout or cancel.
    const Process client = Process::sequence({a("browse"), a("checkout")});
    const Process provider = Process::sequence(
        {a("browse"), Process::choice({a("checkout"), a("cancel")})});
    EXPECT_TRUE(conversation_compatible(client, provider));
    EXPECT_FALSE(conversation_compatible(provider, client));
}

TEST(Conversation, RepeatCoversAnyCount) {
    const Process provider =
        Process::sequence({a("open"), Process::repeat(a("read")), a("close")});
    const Process once =
        Process::sequence({a("open"), a("read"), a("close")});
    const Process thrice = Process::sequence(
        {a("open"), a("read"), a("read"), a("read"), a("close")});
    const Process none = Process::sequence({a("open"), a("close")});
    EXPECT_TRUE(conversation_compatible(once, provider));
    EXPECT_TRUE(conversation_compatible(thrice, provider));
    EXPECT_TRUE(conversation_compatible(none, provider));
    // A bounded client can never cover an unbounded provider.
    EXPECT_FALSE(conversation_compatible(provider, thrice));
}

TEST(Conversation, OrderMatters) {
    const Process client = Process::sequence({a("pay"), a("ship")});
    const Process provider = Process::sequence({a("ship"), a("pay")});
    EXPECT_FALSE(conversation_compatible(client, provider));
}

TEST(Conversation, UnknownOperationBreaksCompatibility) {
    const Process client = Process::sequence({a("x"), a("q")});
    const Process provider = Process::sequence({a("x"), a("y")});
    EXPECT_FALSE(conversation_compatible(client, provider));
}

TEST(Conversation, WitnessNamesTheFailingTrace) {
    const Process client = Process::sequence({a("browse"), a("steal")});
    const Process provider = Process::sequence({a("browse"), a("checkout")});
    const auto witness = incompatibility_witness(client, provider);
    ASSERT_EQ(witness.size(), 2u);
    EXPECT_EQ(witness[0], "browse");
    EXPECT_EQ(witness[1], "steal");
    EXPECT_TRUE(
        incompatibility_witness(client, client).empty());
}

TEST(Conversation, EmptyTraceWitnessReported) {
    // Client may do nothing (repeat allows zero); provider must act.
    const Process client = Process::repeat(a("ping"));
    const Process provider = a("ping");
    const auto witness = incompatibility_witness(client, provider);
    ASSERT_EQ(witness.size(), 1u);
    EXPECT_EQ(witness[0], "<empty>");
}

TEST(Conversation, NestedChoiceAndRepeatEquivalences) {
    // (a | b)* is equivalent to (a* b*)* — classic identity.
    const Process left = Process::repeat(Process::choice({a("a"), a("b")}));
    const Process right = Process::repeat(Process::sequence(
        {Process::repeat(a("a")), Process::repeat(a("b"))}));
    EXPECT_TRUE(conversation_equivalent(left, right));
}

TEST(Conversation, ServiceDocumentCarriesProcess) {
    const ServiceDescription service = parse_service(R"(
      <service name="Shop">
        <capability name="Sell" kind="provided">
          <output concept="u#Receipt"/>
        </capability>
        <process>
          <sequence>
            <atomic op="browse"/>
            <repeat><atomic op="addItem"/></repeat>
            <choice><atomic op="checkout"/><atomic op="cancel"/></choice>
          </sequence>
        </process>
      </service>)");
    ASSERT_TRUE(service.process.has_value());

    const ServiceRequest request = parse_request(R"(
      <request>
        <capability name="Buy"><output concept="u#Receipt"/></capability>
        <process>
          <sequence>
            <atomic op="browse"/>
            <atomic op="addItem"/>
            <atomic op="checkout"/>
          </sequence>
        </process>
      </request>)");
    ASSERT_TRUE(request.process.has_value());
    EXPECT_TRUE(conversation_compatible(*request.process, *service.process));

    // Round trip keeps the processes.
    const auto service2 = parse_service(serialize_service(service));
    ASSERT_TRUE(service2.process.has_value());
    EXPECT_TRUE(conversation_equivalent(*service.process, *service2.process));
    const auto request2 = parse_request(serialize_request(request));
    ASSERT_TRUE(request2.process.has_value());
}

TEST(Conversation, EmptySequenceIsEpsilonLanguage) {
    const Process epsilon = Process::sequence({});
    const Process provider = Process::repeat(a("x"));
    EXPECT_TRUE(conversation_compatible(epsilon, provider));
    EXPECT_FALSE(conversation_compatible(a("x"), epsilon));
}

}  // namespace
}  // namespace sariadne::desc
