// Hybrid ad-hoc + infrastructure networking (the paper targets "open
// pervasive computing environments that integrate heterogeneous wireless
// network technologies (i.e., ad hoc and infrastructure-based
// networking)"). Access points form a cheap wired backbone; elections
// must gravitate onto them; discovery across the backbone must beat the
// pure-radio path.
#include <gtest/gtest.h>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "description/amigos_io.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "test_helpers.hpp"

namespace sariadne {
namespace {

namespace th = sariadne::testing;
using net::NodeId;
using net::Topology;

TEST(HybridTopology, StructureAndFlags) {
    Rng rng(5);
    const Topology topo = Topology::hybrid(20, 4, 0.3, rng);
    EXPECT_EQ(topo.node_count(), 24u);
    EXPECT_TRUE(topo.connected());
    for (NodeId ap = 0; ap < 4; ++ap) {
        EXPECT_TRUE(topo.is_infrastructure(ap));
        // Wired full mesh: each AP reaches the other three directly.
        EXPECT_GE(topo.neighbors(ap).size(), 3u);
    }
    for (NodeId m = 4; m < 24; ++m) {
        EXPECT_FALSE(topo.is_infrastructure(m));
    }
}

TEST(HybridTopology, WiredLinksAreCheaperThanRadio) {
    Rng rng(5);
    const Topology topo = Topology::hybrid(20, 4, 0.3, rng, /*wired_weight=*/0.2);
    // AP to AP: direct wired link costs 0.2; hop count is 1.
    EXPECT_EQ(topo.hop_distance(0, 1), 1);
    EXPECT_DOUBLE_EQ(topo.path_cost(0, 1), 0.2);
    // Weighted cost never exceeds unweighted hops.
    const auto hops = topo.hop_distances(0);
    const auto costs = topo.path_costs(0);
    for (NodeId n = 0; n < topo.node_count(); ++n) {
        ASSERT_GE(hops[n], 0);
        EXPECT_LE(costs[n], static_cast<double>(hops[n]) + 1e-9);
    }
}

TEST(HybridTopology, PathCostRespectsChurn) {
    Topology topo = Topology::grid(3, 1);  // 0 - 1 - 2, unit weights
    EXPECT_DOUBLE_EQ(topo.path_cost(0, 2), 2.0);
    topo.set_up(1, false);
    EXPECT_LT(topo.path_cost(0, 2), 0);  // unreachable
}

TEST(HybridTopology, WeightedShortcutPreferred) {
    // Triangle: 0-1 and 1-2 radio (1.0 each), 0-2 wired 0.3.
    Topology topo = Topology::grid(3, 1);
    topo.add_link(0, 2, 0.3);
    EXPECT_DOUBLE_EQ(topo.path_cost(0, 2), 0.3);
    EXPECT_DOUBLE_EQ(topo.path_cost(0, 1), 1.0);
}

TEST(HybridProtocol, ElectionGravitatesOntoAccessPoints) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());

    Rng rng(11);
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 40;

    ariadne::DiscoveryNetwork network(Topology::hybrid(24, 4, 0.3, rng),
                                      config, kb);
    network.start();
    network.run_for(12000);

    const auto dirs = network.directories();
    ASSERT_FALSE(dirs.empty());
    // Every elected directory should be an access point: mains power and
    // wired degree dominate the fitness of any battery device.
    for (const NodeId dir : dirs) {
        EXPECT_TRUE(sim(network).topology().is_infrastructure(dir))
            << "directory elected on battery node " << dir;
    }
}

TEST(HybridProtocol, DiscoveryAcrossTheWiredBackbone) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());

    Rng rng(13);
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 40;
    config.vicinity_hops = 2;

    ariadne::DiscoveryNetwork network(Topology::hybrid(30, 4, 0.25, rng),
                                      config, kb);
    network.start();
    network.run_for(10000);
    ASSERT_FALSE(network.directories().empty());

    network.publish_service(10,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(5000);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    const auto id = network.discover(30, desc::serialize_request(request));
    network.run_for(10000);
    const auto& outcome = network.outcome(id);
    ASSERT_TRUE(outcome.answered);
    EXPECT_TRUE(outcome.satisfied);
}

TEST(Mobility, NodesMoveAndLinksRewire) {
    Rng rng(3);
    net::Simulator sim(net::Topology::random_geometric(12, 0.4, rng));
    net::MobilityConfig config;
    config.speed = 0.2;
    config.step_ms = 100;
    config.radio_range = 0.4;
    config.seed = 9;
    net::RandomWaypointMobility mobility(sim, config);

    std::vector<net::Position> before;
    for (net::NodeId n = 0; n < 12; ++n) {
        before.push_back(sim.topology().position(n));
    }
    mobility.start();
    sim.run(5000);

    EXPECT_GT(mobility.steps(), 10u);
    EXPECT_GT(mobility.distance_travelled(), 0.5);
    int moved = 0;
    for (net::NodeId n = 0; n < 12; ++n) {
        const auto now = sim.topology().position(n);
        if (now.x != before[n].x || now.y != before[n].y) ++moved;
    }
    EXPECT_GE(moved, 10);
}

TEST(Mobility, InfrastructureStaysPutAndWiredLinksSurvive) {
    Rng rng(5);
    net::Simulator sim(net::Topology::hybrid(16, 4, 0.3, rng));
    const auto ap_pos = sim.topology().position(0);
    net::MobilityConfig config;
    config.speed = 0.3;
    config.step_ms = 100;
    config.radio_range = 0.3;
    net::RandomWaypointMobility mobility(sim, config);
    mobility.start();
    sim.run(5000);

    const auto after = sim.topology().position(0);
    EXPECT_DOUBLE_EQ(after.x, ap_pos.x);
    EXPECT_DOUBLE_EQ(after.y, ap_pos.y);
    // Wired backbone intact: AP 0 still reaches AP 3 in one cheap hop.
    EXPECT_EQ(sim.topology().hop_distance(0, 3), 1);
    EXPECT_LT(sim.topology().path_cost(0, 3), 1.0);
}

TEST(Mobility, DiscoverySurvivesMotion) {
    encoding::KnowledgeBase kb;
    kb.register_ontology(th::media_ontology());
    kb.register_ontology(th::server_ontology());

    Rng rng(17);
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 40;
    config.republish_period_ms = 2000;
    config.request_timeout_ms = 3000;
    config.max_request_retries = 4;

    ariadne::DiscoveryNetwork network(Topology::hybrid(20, 4, 0.3, rng),
                                      config, kb);
    net::MobilityConfig motion;
    motion.speed = 0.03;  // pedestrian pace
    motion.step_ms = 500;
    motion.radio_range = 0.3;
    net::RandomWaypointMobility mobility(sim(network), motion);
    mobility.start();
    network.start();
    network.run_for(8000);
    ASSERT_FALSE(network.directories().empty());

    network.publish_service(10,
                            desc::serialize_service(th::workstation_service()));
    network.run_for(4000);

    desc::ServiceRequest request;
    request.capabilities.push_back(th::get_video_stream());
    int satisfied = 0;
    for (int i = 0; i < 5; ++i) {
        const auto id = network.discover(
            static_cast<net::NodeId>(5 + i * 3),
            desc::serialize_request(request));
        network.run_for(8000);
        if (network.outcome(id).satisfied) ++satisfied;
    }
    // Under continuous motion with republish+retry, most requests succeed.
    EXPECT_GE(satisfied, 4);
}

}  // namespace
}  // namespace sariadne
