#include <gtest/gtest.h>

#include "description/amigos_io.hpp"
#include "description/resolved.hpp"
#include "description/wsdl.hpp"
#include "ontology/registry.hpp"
#include "support/errors.hpp"
#include "test_helpers.hpp"

namespace sariadne::desc {
namespace {

namespace th = sariadne::testing;

TEST(AmigosIo, ServiceRoundTrip) {
    const ServiceDescription original = th::workstation_service();
    const std::string xml = serialize_service(original);
    const ServiceDescription reloaded = parse_service(xml);

    EXPECT_EQ(reloaded.profile.service_name, "Workstation");
    EXPECT_EQ(reloaded.profile.provider, "amigo-home");
    EXPECT_EQ(reloaded.middleware, "WS");
    EXPECT_EQ(reloaded.grounding.protocol, "SOAP");
    EXPECT_EQ(reloaded.grounding.address, "http://workstation.local/media");
    ASSERT_EQ(reloaded.profile.capabilities.size(), 2u);

    const Capability& cap = reloaded.profile.capabilities[0];
    EXPECT_EQ(cap.name, "SendDigitalStream");
    EXPECT_EQ(cap.kind, CapabilityKind::kProvided);
    EXPECT_EQ(cap.category_qname, th::server("DigitalServer"));
    ASSERT_EQ(cap.inputs.size(), 1u);
    EXPECT_EQ(cap.inputs[0].concept_qname, th::media("DigitalResource"));
    ASSERT_EQ(cap.outputs.size(), 1u);
    EXPECT_EQ(cap.outputs[0].concept_qname, th::media("Stream"));
}

TEST(AmigosIo, RequestRoundTrip) {
    ServiceRequest request;
    request.requester = "pda-7";
    request.capabilities.push_back(th::get_video_stream());
    const ServiceRequest reloaded = parse_request(serialize_request(request));
    EXPECT_EQ(reloaded.requester, "pda-7");
    ASSERT_EQ(reloaded.capabilities.size(), 1u);
    EXPECT_EQ(reloaded.capabilities[0].name, "GetVideoStream");
    EXPECT_EQ(reloaded.capabilities[0].kind, CapabilityKind::kRequired);
}

TEST(AmigosIo, QosContextAndCodeVersionPreserved) {
    ServiceDescription service = th::workstation_service();
    service.profile.qos.push_back(QosAttribute{"latencyMs", 15.5});
    service.profile.context.push_back(ContextAttribute{"room", "living"});
    service.profile.capabilities[0].code_version = 12345;
    service.profile.capabilities[0].includes.push_back("ProvideGame");

    const ServiceDescription reloaded = parse_service(serialize_service(service));
    ASSERT_EQ(reloaded.profile.qos.size(), 1u);
    EXPECT_DOUBLE_EQ(reloaded.profile.qos[0].value, 15.5);
    ASSERT_EQ(reloaded.profile.context.size(), 1u);
    EXPECT_EQ(reloaded.profile.context[0].value, "living");
    EXPECT_EQ(reloaded.profile.capabilities[0].code_version, 12345u);
    ASSERT_EQ(reloaded.profile.capabilities[0].includes.size(), 1u);
}

TEST(AmigosIo, RequiredCapabilityKindParsed) {
    const ServiceDescription service = parse_service(R"(
      <service name="S">
        <capability name="c" kind="required">
          <output concept="u#X"/>
        </capability>
      </service>)");
    EXPECT_EQ(service.profile.capabilities[0].kind, CapabilityKind::kRequired);
}

TEST(AmigosIo, MalformedDocumentsFail) {
    EXPECT_THROW(parse_service("<nope/>"), ParseError);
    EXPECT_THROW(parse_service(R"(<service name="s"><capability/></service>)"),
                 LookupError);  // capability missing name attribute
    EXPECT_THROW(parse_service(R"(
      <service name="s"><capability name="c" kind="bogus"/></service>)"),
                 ParseError);
    EXPECT_THROW(parse_request("<request/>"), ParseError);  // no capabilities
    EXPECT_THROW(parse_request(R"(<request><capability name="c">
      <category concept="a#B"/><category concept="a#C"/>
      </capability></request>)"),
                 ParseError);  // duplicate category
}

TEST(AmigosIo, CapabilitiesOfFiltersByKind) {
    ServiceDescription service = th::workstation_service();
    Capability needed;
    needed.name = "NeedsStorage";
    needed.kind = CapabilityKind::kRequired;
    service.profile.capabilities.push_back(needed);

    EXPECT_EQ(service.profile.capabilities_of(CapabilityKind::kProvided).size(),
              2u);
    EXPECT_EQ(service.profile.capabilities_of(CapabilityKind::kRequired).size(),
              1u);
}

TEST(Resolved, ResolvesAllConceptsAndOntologySet) {
    onto::OntologyRegistry registry;
    const auto media_idx = registry.add(th::media_ontology());
    const auto server_idx = registry.add(th::server_ontology());

    const ResolvedCapability resolved =
        resolve_capability(th::send_digital_stream(), registry, "Workstation");
    EXPECT_EQ(resolved.name, "SendDigitalStream");
    EXPECT_EQ(resolved.service_name, "Workstation");
    ASSERT_EQ(resolved.inputs.size(), 1u);
    ASSERT_EQ(resolved.outputs.size(), 1u);
    // Category folded into properties.
    ASSERT_EQ(resolved.properties.size(), 1u);
    EXPECT_EQ(resolved.properties[0].ontology, server_idx);
    EXPECT_TRUE(resolved.ontologies.contains(media_idx));
    EXPECT_TRUE(resolved.ontologies.contains(server_idx));
    EXPECT_EQ(resolved.ontologies.size(), 2u);

    const auto uris = ontology_uris(resolved, registry);
    EXPECT_EQ(uris.size(), 2u);
}

TEST(Resolved, UnknownConceptFails) {
    onto::OntologyRegistry registry;
    registry.add(th::media_ontology());
    Capability cap = th::send_digital_stream();  // references server ontology
    EXPECT_THROW(resolve_capability(cap, registry), LookupError);
}

TEST(Resolved, ResolveProvidedSkipsRequired) {
    onto::OntologyRegistry registry;
    registry.add(th::media_ontology());
    registry.add(th::server_ontology());
    ServiceDescription service = th::workstation_service();
    Capability needed = th::get_video_stream();  // kind = required
    service.profile.capabilities.push_back(needed);

    const auto provided = resolve_provided(service, registry);
    EXPECT_EQ(provided.size(), 2u);
    ServiceRequest pda_request;
    pda_request.requester = "pda";
    pda_request.capabilities.push_back(th::get_video_stream());
    const auto request = resolve_request(pda_request, registry);
    EXPECT_EQ(request.size(), 1u);
}

TEST(Wsdl, RoundTrip) {
    WsdlDescription wsdl;
    wsdl.service_name = "Media";
    WsdlOperation op;
    op.name = "getStream";
    op.inputs.push_back(WsdlPart{"title", "xs:string"});
    op.outputs.push_back(WsdlPart{"stream", "tns:Stream"});
    wsdl.operations.push_back(op);

    const WsdlDescription reloaded = parse_wsdl(serialize_wsdl(wsdl));
    EXPECT_EQ(reloaded.service_name, "Media");
    ASSERT_EQ(reloaded.operations.size(), 1u);
    EXPECT_EQ(reloaded.operations[0].inputs[0].type, "xs:string");
}

TEST(Wsdl, ConformanceIsExactSyntactic) {
    WsdlOperation provided;
    provided.name = "get";
    provided.inputs.push_back(WsdlPart{"a", "T1"});
    provided.inputs.push_back(WsdlPart{"b", "T2"});
    provided.outputs.push_back(WsdlPart{"r", "R"});

    WsdlOperation required = provided;
    EXPECT_TRUE(operation_conforms(provided, required));

    // Extra provided inputs are fine; missing ones are not.
    required.inputs.pop_back();
    EXPECT_TRUE(operation_conforms(provided, required));
    required.inputs.push_back(WsdlPart{"b", "T2-different"});
    EXPECT_FALSE(operation_conforms(provided, required));

    // Different operation name: no match, even with equal signatures —
    // the syntactic brittleness semantic matching removes.
    WsdlOperation renamed = provided;
    renamed.name = "fetch";
    EXPECT_FALSE(operation_conforms(renamed, provided));
}

TEST(Wsdl, ServiceConformance) {
    WsdlDescription provided;
    provided.service_name = "S";
    WsdlOperation op1;
    op1.name = "a";
    WsdlOperation op2;
    op2.name = "b";
    provided.operations = {op1, op2};

    WsdlDescription required;
    required.service_name = "R";
    required.operations = {op1};
    EXPECT_TRUE(wsdl_conforms(provided, required));

    WsdlOperation op3;
    op3.name = "c";
    required.operations.push_back(op3);
    EXPECT_FALSE(wsdl_conforms(provided, required));
}

TEST(Wsdl, MalformedFails) {
    EXPECT_THROW(parse_wsdl("<bogus/>"), ParseError);
    EXPECT_THROW(parse_wsdl(R"(<wsdl name="s"><operation name="o">
        <weird name="x" type="t"/></operation></wsdl>)"),
                 ParseError);
}

}  // namespace
}  // namespace sariadne::desc
