// Ablation A9 — satisfaction under a lossy radio, with and without the
// self-healing machinery.
//
// The fault layer injects message loss, duplication and latency jitter
// into every link. The self-healing stack — acknowledged publish with
// retransmit/backoff, request retry with deferral, periodic republish —
// is what keeps the satisfaction ratio flat as the loss rate climbs;
// this bench sweeps the loss rate and prints the ratio with healing ON
// (acks + retries) and OFF (fire-and-forget publish, no request retry),
// so the gap *is* the value of the machinery.
#include <cstdio>
#include <string>
#include <vector>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "bench_util.hpp"
#include "description/amigos_io.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

double run(double loss, bool healing, workload::ServiceWorkload& workload,
           encoding::KnowledgeBase& kb) {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 30;
    config.republish_period_ms = healing ? 2000 : 1e9;
    config.request_timeout_ms = 800;
    config.max_request_retries = healing ? 8 : 0;
    config.publish_ack_timeout_ms = healing ? 500 : 0;
    config.publish_max_retries = 6;

    ariadne::DiscoveryNetwork network(net::Topology::grid(4, 4), config, kb);
    net::FaultPlan plan;
    plan.seed = 0xFA071;
    plan.loss_probability = loss;
    plan.duplication_probability = 0.10;
    plan.latency_jitter_ms = 15.0;
    sim(network).set_faults(std::move(plan));

    network.appoint_directory(5);
    network.start();
    network.run_for(500);
    for (std::size_t i = 0; i < 8; ++i) {
        network.publish_service(static_cast<net::NodeId>(i),
                                workload.service_xml(i));
    }
    network.run_for(2000);

    std::vector<std::uint64_t> issued;
    for (std::size_t tick = 0; tick < 24; ++tick) {
        issued.push_back(
            network.discover(static_cast<net::NodeId>(10 + tick % 6),
                             workload.matching_request_xml(tick % 8)));
        network.run_for(1000);
    }
    network.run_for(30000);  // drain retries and backoffs

    std::size_t satisfied = 0;
    for (const std::uint64_t id : issued) {
        const auto& outcome = network.outcome(id);
        if (outcome.answered && outcome.satisfied) ++satisfied;
    }
    return static_cast<double>(satisfied) / static_cast<double>(issued.size());
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation A9: loss rate vs satisfaction, self-healing on/off",
        "acknowledged publish + request retry keep discovery satisfaction "
        "flat under radio loss that cripples the fire-and-forget paths");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(8, onto_config, 31415));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%10s %16s %16s\n", "loss", "healing_on", "healing_off");
    double healed_at_0 = 0;
    double healed_at_30 = 0;
    double raw_at_30 = 0;
    for (const double loss : {0.0, 0.1, 0.2, 0.3}) {
        const double healed = run(loss, /*healing=*/true, workload, kb);
        const double raw = run(loss, /*healing=*/false, workload, kb);
        std::printf("%9.0f%% %15.0f%% %15.0f%%\n", 100 * loss, 100 * healed,
                    100 * raw);
        if (loss == 0.0) healed_at_0 = healed;
        if (loss == 0.3) {
            healed_at_30 = healed;
            raw_at_30 = raw;
        }
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(healed_at_0 > 0.95,
                 "a clean radio satisfies essentially every request");
    checks.check(healed_at_30 > 0.8,
                 "self-healing holds satisfaction above 80% at 30% loss");
    checks.check(healed_at_30 > raw_at_30,
                 "self-healing beats fire-and-forget at 30% loss");
    std::printf("\n");
    return checks.finish("ablation_faults");
}
