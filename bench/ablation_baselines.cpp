// Ablation A3 — the annotated-taxonomy design point ([13], §3.1).
//
// Srinivasan, Paolucci & Sycara move ALL matching work to publish time:
// every concept of the classified taxonomy is annotated with the
// advertisements matching it. The paper reports publishing at ~7x the cost
// of plain (syntactic) publishing while queries drop to milliseconds. This
// bench compares, on the same workload:
//   * syntactic store  (Ariadne publish: validate + keep the document)
//   * DAG classification (S-Ariadne publish, §3.3)
//   * taxonomy annotation ([13]-style publish)
// and their query times, verifying the published trade-off shape.
#include <cstdio>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "directory/syntactic_directory.hpp"
#include "directory/taxonomy_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Ablation A3: DAG classification vs annotated-taxonomy vs syntactic",
        "[13]: publish ~7x a syntactic publish; queries in milliseconds "
        "with no online reasoning");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 40;
    workload::ServiceWorkload workload(
        workload::generate_universe(8, onto_config, 1234));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    constexpr std::size_t kServices = 80;

    // --- publish costs -----------------------------------------------------
    const double syntactic_publish = bench::median_ms(5, [&] {
        directory::SyntacticDirectory dir;
        for (std::size_t i = 0; i < kServices; ++i) {
            dir.publish_xml(workload.wsdl_xml(i));
        }
    }) / kServices;

    const double dag_publish = bench::median_ms(5, [&] {
        directory::SemanticDirectory dir(kb);
        for (std::size_t i = 0; i < kServices; ++i) {
            (void)dir.publish_xml(workload.service_xml(i));
        }
    }) / kServices;

    std::size_t annotations = 0;
    const double taxonomy_publish = bench::median_ms(5, [&] {
        directory::TaxonomyDirectory dir(kb);
        annotations = 0;
        for (std::size_t i = 0; i < kServices; ++i) {
            annotations += dir.publish_xml(workload.service_xml(i));
        }
    }) / kServices;

    std::printf("\npublish cost per service (%zu services):\n", kServices);
    std::printf("%24s %14s %10s\n", "strategy", "ms/service", "ratio");
    std::printf("%24s %14.4f %9.1fx\n", "syntactic store", syntactic_publish, 1.0);
    std::printf("%24s %14.4f %9.1fx\n", "DAG classification", dag_publish,
                dag_publish / syntactic_publish);
    std::printf("%24s %14.4f %9.1fx   (%zu concept annotations)\n",
                "taxonomy annotation", taxonomy_publish,
                taxonomy_publish / syntactic_publish, annotations);

    // --- query costs ---------------------------------------------------------
    directory::SyntacticDirectory syntactic;
    directory::SemanticDirectory dag(kb);
    directory::TaxonomyDirectory annotated(kb);
    for (std::size_t i = 0; i < kServices; ++i) {
        syntactic.publish_xml(workload.wsdl_xml(i));
        dag.publish(workload.service(i));
        annotated.publish(workload.service(i));
    }
    std::vector<std::vector<desc::ResolvedCapability>> requests;
    std::vector<std::string> wsdl_requests;
    for (std::size_t r = 0; r < 20; ++r) {
        requests.push_back(desc::resolve_request(
            workload.matching_request((r * 7) % kServices), kb.registry()));
        wsdl_requests.push_back(workload.wsdl_request_xml((r * 7) % kServices));
    }

    const double syntactic_query = bench::median_ms(5, [&] {
        for (const auto& request : wsdl_requests) {
            directory::QueryTiming timing;
            (void)syntactic.query_xml(request, timing);
        }
    }) / requests.size();
    const double dag_query = bench::median_ms(5, [&] {
        for (const auto& request : requests) (void)dag.query_resolved(request);
    }) / requests.size();
    const double annotated_query = bench::median_ms(5, [&] {
        for (const auto& request : requests) {
            directory::MatchStats stats;
            (void)annotated.query(request[0], stats);
        }
    }) / requests.size();

    std::printf("\nquery cost per request (directory of %zu services):\n",
                kServices);
    std::printf("%24s %14s\n", "strategy", "ms/request");
    std::printf("%24s %14.4f\n", "syntactic re-parse", syntactic_query);
    std::printf("%24s %14.4f\n", "DAG classification", dag_query);
    std::printf("%24s %14.4f\n", "taxonomy annotation", annotated_query);

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(taxonomy_publish > 1.5 * syntactic_publish,
                 "annotation publish costs a multiple of a syntactic publish "
                 "(paper: ~7x vs bare UDDI; our syntactic baseline already "
                 "parses XML, compressing the ratio)");
    checks.check(taxonomy_publish > dag_publish,
                 "annotation publish costlier than DAG classification");
    checks.check(annotated_query < 5.0 && dag_query < 5.0,
                 "both semantic query paths answer within milliseconds");
    checks.check(dag_query < syntactic_query,
                 "DAG query beats syntactic re-parse matching");
    std::printf("\n");
    return checks.finish("ablation_baselines");
}
