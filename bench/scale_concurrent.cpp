// Concurrent-query scaling of the sharded SemanticDirectory.
//
// The paper evaluates a single-threaded directory; a production S-Ariadne
// node serves many clients at once. This bench measures end-to-end query
// throughput (queries/sec) against one shared directory as the number of
// query threads grows, over a 5-ontology / 500-service generated workload.
// The sharded DAG index + per-operation oracles mean queries take only
// shared locks, so throughput should scale close to linearly until the
// core count is exhausted.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

constexpr std::size_t kOntologies = 5;
constexpr std::size_t kServices = 500;
constexpr std::size_t kRequestPool = 128;
constexpr std::size_t kQueriesPerThread = 2000;

struct Fixture {
    encoding::KnowledgeBase kb;
    obs::MetricsRegistry metrics;
    std::unique_ptr<workload::ServiceWorkload> workload;
    std::unique_ptr<directory::SemanticDirectory> directory;
    std::vector<std::vector<desc::ResolvedCapability>> requests;

    Fixture() {
        workload::OntologyGenConfig onto_config;
        onto_config.class_count = 30;
        auto universe =
            workload::generate_universe(kOntologies, onto_config, 4242);
        for (const auto& o : universe) kb.register_ontology(o);
        workload =
            std::make_unique<workload::ServiceWorkload>(std::move(universe));
        directory = std::make_unique<directory::SemanticDirectory>(
            kb, bloom::BloomParams{}, &metrics);
        for (std::size_t i = 0; i < kServices; ++i) {
            directory->publish(workload->service(i));
        }
        // Pre-resolve a pool of requests; resolution is a read-only string
        // lookup and would otherwise dominate the matcher we want to scale.
        requests.reserve(kRequestPool);
        for (std::size_t i = 0; i < kRequestPool; ++i) {
            requests.push_back(desc::resolve_request(
                workload->matching_request(i % kServices), kb.registry()));
        }
        // Warm the code tables so the first timed query does no encoding.
        for (std::size_t i = 0; i < kOntologies; ++i) {
            (void)kb.code_table(static_cast<onto::OntologyIndex>(i));
        }
    }
};

/// Runs `threads` query threads, each issuing kQueriesPerThread queries
/// round-robin over the request pool. Returns queries/sec.
double run_threads(const Fixture& fixture, std::size_t threads,
                   std::size_t& unsatisfied_out) {
    std::atomic<std::size_t> unsatisfied{0};
    const double elapsed_ms = bench::median_ms(5, [&] {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                std::size_t misses = 0;
                for (std::size_t q = 0; q < kQueriesPerThread; ++q) {
                    const auto& request =
                        fixture.requests[(t * 37 + q) % kRequestPool];
                    const auto result =
                        fixture.directory->query_resolved(request);
                    if (!result.fully_satisfied()) ++misses;
                }
                unsatisfied.fetch_add(misses, std::memory_order_relaxed);
            });
        }
        for (auto& worker : pool) worker.join();
    });
    unsatisfied_out = unsatisfied.load();
    const double total_queries =
        static_cast<double>(threads) * static_cast<double>(kQueriesPerThread);
    return total_queries / (elapsed_ms / 1000.0);
}

}  // namespace

int main() {
    bench::print_header(
        "Scaling: concurrent query throughput vs thread count",
        "sharded reader-writer locking keeps queries lock-free of each "
        "other, so a multi-client directory node scales with cores");

    Fixture fixture;
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("\nworkload: %zu ontologies, %zu services, %zu queries/thread "
                "(hardware threads: %u)\n\n",
                kOntologies, kServices, kQueriesPerThread, cores);
    std::printf("%8s %14s %10s %12s\n", "threads", "queries/s", "speedup",
                "unsatisfied");

    // The headline claim (>=2.5x at 4 threads) needs >=4 cores to be
    // observable; on smaller machines check the largest non-oversubscribed
    // point instead and require parallel efficiency >= ~65%.
    const std::size_t measure_point =
        cores >= 4 ? 4 : std::max(2u, cores == 0 ? 2u : cores);
    const double target =
        cores >= 4 ? 2.5 : 0.65 * static_cast<double>(measure_point);

    double baseline = 0.0;
    double speedup_at_point = 0.0;
    double best_speedup = 0.0;
    std::size_t total_unsatisfied = 0;
    for (const std::size_t threads : {1ul, 2ul, 4ul, 8ul}) {
        std::size_t unsatisfied = 0;
        const double qps = run_threads(fixture, threads, unsatisfied);
        if (threads == 1) baseline = qps;
        const double speedup = qps / baseline;
        if (threads == measure_point) speedup_at_point = speedup;
        if (threads > 1) best_speedup = std::max(best_speedup, speedup);
        total_unsatisfied += unsatisfied;
        std::printf("%8zu %14.0f %9.2fx %12zu\n", threads, qps, speedup,
                    unsatisfied);
    }
    // On boxes with fewer than 4 cores the per-point numbers are noisy
    // (the OS shares the cores with everything else); score the best
    // multi-thread point instead of one pinned thread count.
    if (cores < 4) speedup_at_point = best_speedup;

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(total_unsatisfied == 0,
                 "every query is fully satisfied at every thread count");
    char claim[160];
    if (cores >= 4) {
        std::snprintf(claim, sizeof(claim),
                      "%zu query threads deliver >=%.2fx the single-thread "
                      "throughput (measured %.2fx on %u cores)",
                      measure_point, target, speedup_at_point, cores);
    } else {
        std::snprintf(claim, sizeof(claim),
                      "best multi-thread point delivers >=%.2fx the "
                      "single-thread throughput (measured %.2fx on %u cores)",
                      target, speedup_at_point, cores);
    }
    checks.check(speedup_at_point >= target, claim);
    bench::emit_metrics(fixture.metrics, "scale_concurrent");
    std::printf("\n");
    return checks.finish("scale_concurrent");
}
