// Figure 9 — "Time to match a service request".
//
// The same encoded semantic matching run against two directory layouts:
// capabilities classified into ontology-indexed DAGs (optimized) versus a
// flat list matched linearly (non-optimized). The paper reports, XML
// parsing excluded: the non-optimized time exceeding the optimized one by
// ~50 % on average and growing with directory size, the optimized time
// almost constant, and absolute times of a few milliseconds.
#include <cstdio>
#include <vector>

#include "alloc_probe.hpp"
#include "bench_util.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Figure 9: request matching, classified DAGs vs no classification",
        "non-optimized matching ~+50% and growing; optimized nearly "
        "constant, a few ms at most (XML parsing excluded)");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));

    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%8s %16s %20s %14s %14s\n", "services", "optimized_ms",
                "non_optimized_ms", "dag_matches", "flat_matches");

    constexpr int kRequestsPerPoint = 20;
    double opt_at_10 = 0;
    double opt_at_100 = 0;
    double flat_at_10 = 0;
    double flat_at_100 = 0;
    double overhead_sum = 0;
    int overhead_points = 0;
    bench::LatencyStats reuse_at_500;
    std::uint64_t heap_allocs_at_500 = ~0ULL;

    // 10..100 reproduces the paper's figure; 200 and 500 extend the sweep
    // to directory sizes where quick-reject pruning has room to work.
    const std::vector<std::size_t> counts{10, 20,  30,  40,  50, 60,
                                          70, 80,  90,  100, 200, 500};
    for (const std::size_t count : counts) {
        directory::SemanticDirectory semantic(kb);
        directory::FlatDirectory flat(kb);
        for (std::size_t i = 0; i < count; ++i) {
            semantic.publish(workload.service(i));
            flat.publish(workload.service(i));
        }

        // Pre-resolve requests through the KnowledgeBase overload so they
        // carry CodeSignatures, as a resolve-once client would. Figure 9
        // excludes XML parsing.
        std::vector<std::vector<desc::ResolvedCapability>> requests;
        for (int r = 0; r < kRequestsPerPoint; ++r) {
            requests.push_back(desc::resolve_request(
                workload.matching_request((static_cast<std::size_t>(r) * 13) % count),
                kb));
        }

        std::uint64_t dag_matches = 0;
        const double optimized = bench::median_ms(7, [&] {
            dag_matches = 0;
            for (const auto& request : requests) {
                const auto result = semantic.query_resolved(request);
                dag_matches += result.stats.capability_matches;
            }
        }) / kRequestsPerPoint;

        std::uint64_t flat_matches = 0;
        const double non_optimized = bench::median_ms(7, [&] {
            flat_matches = 0;
            for (const auto& request : requests) {
                directory::MatchStats stats;
                directory::QueryTiming timing;
                (void)flat.query(request, stats, timing);
                flat_matches += stats.capability_matches;
            }
        }) / kRequestsPerPoint;

        std::printf("%8zu %16.4f %20.4f %14.1f %14.1f\n", count, optimized,
                    non_optimized,
                    static_cast<double>(dag_matches) / kRequestsPerPoint,
                    static_cast<double>(flat_matches) / kRequestsPerPoint);

        if (count == 10) {
            opt_at_10 = optimized;
            flat_at_10 = non_optimized;
        }
        if (count == 100) {
            opt_at_100 = optimized;
            flat_at_100 = non_optimized;
        }
        if (count <= 100) {  // the paper's sweep, for the overhead claim
            overhead_sum += non_optimized / (optimized > 0 ? optimized : 1e-9);
            ++overhead_points;
        }

        // Per-request latency distribution for the consolidated matching
        // report, at the paper's largest point and at the extended points.
        // The allocating API, the buffer-reusing API and the flat scan are
        // sampled interleaved (A/B/flat per repetition) so all three see
        // the same scheduler and cache conditions.
        if (count == 100 || count == 200 || count == 500) {
            std::vector<double> semantic_us;
            std::vector<double> reuse_us;
            std::vector<double> flat_us;
            directory::QueryResult reused;
            for (int rep = 0; rep < 9; ++rep) {
                for (const auto& request : requests) {
                    Stopwatch stopwatch;
                    (void)semantic.query_resolved(request);
                    semantic_us.push_back(stopwatch.elapsed_ms() * 1000.0);
                }
                for (const auto& request : requests) {
                    Stopwatch stopwatch;
                    semantic.query_resolved(request, {}, reused);
                    reuse_us.push_back(stopwatch.elapsed_ms() * 1000.0);
                }
                for (const auto& request : requests) {
                    directory::MatchStats stats;
                    directory::QueryTiming timing;
                    Stopwatch stopwatch;
                    (void)flat.query(request, stats, timing);
                    flat_us.push_back(stopwatch.elapsed_ms() * 1000.0);
                }
            }
            const std::string suffix = std::to_string(count);
            bench::upsert_bench_json("BENCH_matching.json",
                                     "fig9.semantic_query_" + suffix,
                                     bench::summarize_us(semantic_us));
            bench::upsert_bench_json("BENCH_matching.json",
                                     "fig9.semantic_query_reuse_" + suffix,
                                     bench::summarize_us(reuse_us));
            bench::upsert_bench_json("BENCH_matching.json",
                                     "fig9.flat_query_" + suffix,
                                     bench::summarize_us(flat_us));
        }

        // Tail-latency + allocation gate at the largest point: with warm
        // buffers the reuse API must answer every query without touching
        // the heap, and its p99 must stay within 2x of its p50 — the
        // "nearly constant" claim sharpened into a tail bound.
        if (count == 500) {
            directory::QueryResult reused;
            for (int warm = 0; warm < 4; ++warm) {
                for (const auto& request : requests) {
                    semantic.query_resolved(request, {}, reused);
                }
            }
            // Batch-amortized per-op latency, same rationale as
            // bench::sample_kernel: a sub-microsecond query timed one call
            // at a time mostly measures scheduler preemptions and timer
            // granularity. Each sample runs the full request set several
            // times inside one stopwatch, so every sample measures the
            // identical workload mix — a partial batch would make the p99
            // track which requests a batch happened to contain rather
            // than the matcher's tail — and the window is wide enough
            // (tens of microseconds) that an OS timer tick landing inside
            // it is amortized instead of doubling the sample. The vector
            // is pre-reserved and the stats are reduced after the loop,
            // so the measured region performs no allocations of its own.
            constexpr int kGateSamples = 2000;
            constexpr int kGatePasses = 5;
            const int gate_batch =
                kGatePasses * static_cast<int>(requests.size());
            std::vector<double> gate_us;
            gate_us.reserve(kGateSamples);
            const std::uint64_t heap_before = bench_alloc::allocations();
            for (int s = 0; s < kGateSamples; ++s) {
                Stopwatch stopwatch;
                for (int pass = 0; pass < kGatePasses; ++pass) {
                    for (const auto& request : requests) {
                        semantic.query_resolved(request, {}, reused);
                    }
                }
                gate_us.push_back(stopwatch.elapsed_ms() * 1000.0 /
                                  gate_batch);
            }
            heap_allocs_at_500 = bench_alloc::allocations() - heap_before;
            reuse_at_500 = bench::summarize_us(gate_us);
            bench::upsert_bench_json("BENCH_matching.json",
                                     "fig9.semantic_query_gate_500",
                                     reuse_at_500);
            std::printf(
                "\n500-service reuse-API gate: p50 %.3fus p99 %.3fus "
                "(batch-amortized /%d), %llu heap alloc(s) across %d "
                "queries\n",
                reuse_at_500.p50_us, reuse_at_500.p99_us, gate_batch,
                static_cast<unsigned long long>(heap_allocs_at_500),
                kGateSamples * gate_batch);
        }
    }

    std::printf("\naverage non-optimized / optimized ratio: %.2fx\n",
                overhead_sum / overhead_points);

    bench::ShapeChecks checks;
    checks.check(flat_at_100 > flat_at_10,
                 "non-optimized matching grows with directory size");
    checks.check(flat_at_100 > 1.4 * opt_at_100,
                 "non-optimized at least ~40% above optimized at 100 services "
                 "(paper: ~50% average overhead)");
    checks.check(opt_at_100 < 5.0,
                 "optimized matching stays within a few milliseconds");
    checks.check(opt_at_100 < 3.0 * opt_at_10 + 0.05,
                 "optimized matching nearly constant in directory size");
    checks.check(heap_allocs_at_500 == 0,
                 "warmed-up reuse-API queries at 500 services perform zero "
                 "heap allocations");
    checks.check(reuse_at_500.p99_us <= 2.0 * reuse_at_500.p50_us,
                 "reuse-API p99 within 2x p50 at 500 services");
    std::printf("\n");
    return checks.finish("fig9_query_matching");
}
