// Ablation A2 — Bloom-filter directory summaries (§4) and the exact
// interval-bitmap alternative.
//
// Three questions the routing layer hinges on:
//   (a) how the false-positive rate — the probability a directory is
//       needlessly queried — depends on filter size m and hash count k,
//       and how close measurement is to the (1 - e^{-kn/m})^k theory;
//   (b) how many forwarded request messages Bloom-selective forwarding
//       saves against flooding every directory, at various backbone sizes;
//   (c) the routing-precision frontier: on a partitioned multi-directory
//       workload, wasted forwards / summary bytes / time-to-first-result
//       for Bloom filters across m against the exact concept-code summary,
//       plus delta-vs-snapshot push bytes under churn. Results are
//       upserted into BENCH_routing.json. `--small` runs a CI-sized
//       frontier.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bloom/bloom_filter.hpp"
#include "description/resolved.hpp"
#include "directory/semantic_directory.hpp"
#include "summary/interval_summary.hpp"
#include "summary/summary_wire.hpp"
#include "support/stopwatch.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;
using bloom::BloomFilter;
using bloom::BloomParams;

namespace {

/// One Bloom configuration of the frontier: per-directory filters fed the
/// same ontology-URI sets the protocol's summary push would carry.
struct BloomCell {
    BloomParams params;
    std::vector<BloomFilter> filters;
    std::size_t forwards = 0;
    std::size_t wasted = 0;
    bool false_negative = false;
};

/// (c) Routing-precision frontier. Hot ontologies are partitioned across
/// directories (each lives wholly in one place — the regime the backbone
/// aims for), while every directory also caches a spread of services over
/// cold ontologies nobody requests. The clutter saturates URI-level Bloom
/// filters exactly the way real mixed caches do; the exact summary keys
/// per-ontology bitmaps and is immune to it.
void run_frontier(std::size_t services, std::size_t dirs, bool small,
                  bool final_size, bench::ShapeChecks& checks) {
    const std::size_t hot = small ? 8 : 24;
    const std::size_t cold = hot;
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 26;
    encoding::KnowledgeBase kb;
    auto universe = workload::generate_universe(hot + cold, onto_config, 77);
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceWorkload workload(std::move(universe));

    // Partition: hot-ontology services by ontology; cold clutter rotates one
    // directory per occurrence of its ontology. (A plain `i % dirs` would
    // silently re-partition by ontology because dirs divides hot + cold.)
    std::vector<std::vector<desc::ServiceDescription>> batches(dirs);
    std::vector<std::size_t> hot_indices;
    for (std::size_t i = 0; i < services; ++i) {
        const std::size_t o = i % (hot + cold);
        const std::size_t d =
            o < hot ? o % dirs : (o + i / (hot + cold)) % dirs;
        batches[d].push_back(workload.service(i));
        if (o < hot) hot_indices.push_back(i);
    }

    std::vector<std::unique_ptr<directory::SemanticDirectory>> directories;
    Stopwatch publish_watch;
    for (std::size_t d = 0; d < dirs; ++d) {
        directories.push_back(std::make_unique<directory::SemanticDirectory>(
            kb, directory::SummaryConfig{summary::SummaryBackend::kInterval}));
        directories[d]->publish_batch(batches[d]);
    }
    const double publish_ms = publish_watch.elapsed_ms();

    // Bloom frontier cells + the exact snapshots a push would ship.
    std::vector<BloomCell> cells;
    const std::vector<BloomParams> frontier =
        small ? std::vector<BloomParams>{{256, 2}, {1024, 4}}
              : std::vector<BloomParams>{
                    {256, 2}, {512, 4}, {1024, 4}, {4096, 4}};
    for (const BloomParams params : frontier) {
        BloomCell cell;
        cell.params = params;
        cell.filters.assign(dirs, BloomFilter(params));
        cells.push_back(std::move(cell));
    }
    std::vector<summary::IntervalSummary> summaries;
    std::size_t exact_summary_bytes = 0;
    for (std::size_t d = 0; d < dirs; ++d) {
        for (const desc::ServiceDescription& service : batches[d]) {
            for (const auto& cap : desc::resolve_provided(service, kb)) {
                const auto uris = desc::ontology_uris(cap, kb.registry());
                for (BloomCell& cell : cells) {
                    cell.filters[d].insert_ontology_set(uris);
                }
            }
        }
        summaries.push_back(directories[d]->interval_summary());
        exact_summary_bytes += summary::encode_summary(summaries[d]).size();
    }

    // Requests over the hot partition only; every request has exactly one
    // home directory that truly matches, so each extra forward is waste.
    const std::size_t request_count =
        std::min<std::size_t>(hot_indices.size(), small ? 60 : 400);
    std::size_t exact_forwards = 0;
    std::size_t exact_wasted = 0;
    bool exact_false_negative = false;
    std::vector<double> exact_first_us;
    std::vector<double> bloom_first_us;
    for (std::size_t r = 0; r < request_count; ++r) {
        const auto request = workload.matching_request(hot_indices[r]);
        const auto resolved = desc::resolve_request(request, kb);
        const summary::RequestProbe probe =
            summary::build_request_probe(resolved, kb);
        std::vector<std::string> uris;
        for (const auto& cap : resolved) {
            for (const std::string& uri :
                 desc::ontology_uris(cap, kb.registry())) {
                uris.push_back(uri);
            }
        }
        std::vector<bool> truth(dirs, false);
        for (std::size_t d = 0; d < dirs; ++d) {
            const auto result = directories[d]->query_resolved(resolved);
            for (const auto& hits : result.per_capability) {
                truth[d] = truth[d] || !hits.empty();
            }
        }
        for (std::size_t d = 0; d < dirs; ++d) {
            const bool exact_fwd = summaries[d].covers(probe);
            if (exact_fwd) {
                ++exact_forwards;
                if (!truth[d]) ++exact_wasted;
            } else if (truth[d]) {
                exact_false_negative = true;
            }
            for (BloomCell& cell : cells) {
                const bool bloom_fwd = cell.filters[d].possibly_covers(uris);
                if (bloom_fwd) {
                    ++cell.forwards;
                    if (!truth[d]) ++cell.wasted;
                } else if (truth[d]) {
                    cell.false_negative = true;
                }
            }
        }

        // Interleaved A/B time-to-first-result: route with each summary
        // kind, querying selected directories until the first real hit —
        // wasted forwards show up as extra fruitless queries.
        {
            Stopwatch watch;
            bool found = false;
            for (std::size_t d = 0; d < dirs && !found; ++d) {
                if (!summaries[d].covers(probe)) continue;
                const auto result = directories[d]->query_resolved(resolved);
                for (const auto& hits : result.per_capability) {
                    found = found || !hits.empty();
                }
            }
            exact_first_us.push_back(watch.elapsed_ms() * 1000.0);
        }
        {
            Stopwatch watch;
            bool found = false;
            for (std::size_t d = 0; d < dirs && !found; ++d) {
                if (!cells.front().filters[d].possibly_covers(uris)) continue;
                const auto result = directories[d]->query_resolved(resolved);
                for (const auto& hits : result.per_capability) {
                    found = found || !hits.empty();
                }
            }
            bloom_first_us.push_back(watch.elapsed_ms() * 1000.0);
        }
    }

    // Churn: one publish + one retirement per round against a rotating
    // directory; ship the word-granular delta instead of a full snapshot
    // and tally what each policy would have cost on the wire.
    const std::size_t churn_rounds = small ? 8 : 24;
    std::size_t delta_bytes = 0;
    std::size_t snapshot_bytes = 0;
    std::size_t delta_pushes = 0;
    std::vector<directory::ServiceId> pending(dirs);
    std::vector<bool> has_pending(dirs, false);
    std::vector<summary::IntervalSummary> last_pushed = summaries;
    for (std::size_t round = 0; round < churn_rounds; ++round) {
        const std::size_t d = round % dirs;
        if (has_pending[d]) directories[d]->remove(pending[d]);
        pending[d] =
            directories[d]->publish_xml(workload.service_xml(services + round))
                .id;
        has_pending[d] = true;
        summary::IntervalSummary cur = directories[d]->interval_summary();
        const summary::SummaryDelta delta =
            summary::diff_summary(last_pushed[d], cur);
        delta_bytes += summary::encode_delta(delta).size();
        snapshot_bytes += summary::encode_summary(cur).size();
        ++delta_pushes;
        last_pushed[d] = std::move(cur);
    }

    const auto per_req = [&](std::size_t n) {
        return static_cast<double>(n) / static_cast<double>(request_count);
    };
    std::printf(
        "\nrouting precision, %zu services, %zu directories, %zu requests "
        "(publish %.0f ms):\n",
        services, dirs, request_count, publish_ms);
    std::printf("%16s %10s %10s %14s\n", "summary", "forwards", "wasted",
                "bytes/dir");
    for (const BloomCell& cell : cells) {
        std::printf("%11s %4u %10.2f %10.2f %14u\n", "bloom",
                    cell.params.bits, per_req(cell.forwards),
                    per_req(cell.wasted), cell.params.bits / 8);
    }
    std::printf("%16s %10.2f %10.2f %14zu\n", "exact-bitmap",
                per_req(exact_forwards), per_req(exact_wasted),
                exact_summary_bytes / dirs);
    auto exact_stats = bench::summarize_us(exact_first_us);
    auto bloom_stats = bench::summarize_us(bloom_first_us);
    std::printf(
        "time-to-first-result p50: exact %.1f us, bloom-%u %.1f us\n",
        exact_stats.p50_us, cells.front().params.bits, bloom_stats.p50_us);
    std::printf(
        "churn pushes: %zu deltas, %zu bytes vs %zu snapshot bytes "
        "(%.0f%% saved)\n",
        delta_pushes, delta_bytes, snapshot_bytes,
        100.0 * (1.0 - static_cast<double>(delta_bytes) /
                           static_cast<double>(snapshot_bytes)));

    const std::string suffix = std::to_string(services);
    std::string bloom_json = "[";
    for (std::size_t c = 0; c < cells.size(); ++c) {
        char cell_json[160];
        std::snprintf(cell_json, sizeof(cell_json),
                      "%s{\"bits\": %u, \"forwards\": %zu, \"wasted\": %zu, "
                      "\"false_negative\": %s}",
                      c == 0 ? "" : ", ", cells[c].params.bits,
                      cells[c].forwards, cells[c].wasted,
                      cells[c].false_negative ? "true" : "false");
        bloom_json += cell_json;
    }
    bloom_json += "]";
    char frontier_json[512];
    std::snprintf(
        frontier_json, sizeof(frontier_json),
        "{\"services\": %zu, \"directories\": %zu, \"requests\": %zu, "
        "\"exact_forwards\": %zu, \"exact_wasted\": %zu, "
        "\"exact_bytes_per_dir\": %zu, \"bloom\": %s}",
        services, dirs, request_count, exact_forwards, exact_wasted,
        exact_summary_bytes / dirs, bloom_json.c_str());
    bench::upsert_bench_json("BENCH_routing.json",
                             "routing.frontier_" + suffix, frontier_json);
    char churn_json[256];
    std::snprintf(churn_json, sizeof(churn_json),
                  "{\"rounds\": %zu, \"delta_pushes\": %zu, "
                  "\"delta_bytes\": %zu, \"snapshot_bytes\": %zu}",
                  churn_rounds, delta_pushes, delta_bytes, snapshot_bytes);
    bench::upsert_bench_json("BENCH_routing.json",
                             "routing.delta_push_" + suffix, churn_json);
    bench::upsert_bench_json("BENCH_routing.json",
                             "routing.first_result_exact_" + suffix,
                             exact_stats);
    bench::upsert_bench_json("BENCH_routing.json",
                             "routing.first_result_bloom_" + suffix,
                             bloom_stats);

    checks.check(!exact_false_negative,
                 "exact summary never excludes a directory that matches");
    bool bloom_false_negative = false;
    for (const BloomCell& cell : cells) {
        bloom_false_negative = bloom_false_negative || cell.false_negative;
    }
    checks.check(!bloom_false_negative,
                 "Bloom summaries never exclude a directory that matches");
    checks.check(exact_wasted == 0,
                 "exact summary routing produces zero wasted forwards");
    checks.check(delta_bytes < snapshot_bytes,
                 "delta pushes undercut full snapshots under churn");
    if (final_size && !small) {
        checks.check(cells.front().wasted > 0,
                     "small Bloom filters produce measurable wasted "
                     "forwards on a cluttered cache");
        checks.check(cells.front().wasted >= cells.back().wasted,
                     "wasted forwards fall as Bloom filters grow");
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0) small = true;
    }
    bench::print_header(
        "Ablation A2: Bloom summary false positives and forwarding savings",
        "k and m can be chosen so that the probability of a false positive "
        "is minimized (§4)");

    constexpr std::size_t kInsertions = 64;  // ontology sets per directory
    std::printf("\nfalse-positive rate, %zu inserted ontology sets:\n",
                kInsertions);
    std::printf("%8s %4s %14s %14s\n", "m_bits", "k", "measured", "theory");

    double measured_512_4 = 0;
    double measured_4096_4 = 0;
    for (const BloomParams params :
         {BloomParams{512, 2}, BloomParams{512, 4}, BloomParams{1024, 4},
          BloomParams{2048, 4}, BloomParams{4096, 4}, BloomParams{4096, 8}}) {
        BloomFilter filter(params);
        for (std::size_t i = 0; i < kInsertions; ++i) {
            filter.insert(
                BloomFilter::element_key("member-" + std::to_string(i)));
        }
        int false_positives = 0;
        constexpr int kProbes = 50000;
        for (int i = 0; i < kProbes; ++i) {
            if (filter.possibly_contains(
                    BloomFilter::element_key("absent-" + std::to_string(i)))) {
                ++false_positives;
            }
        }
        const double measured = static_cast<double>(false_positives) / kProbes;
        const double theory =
            BloomFilter::expected_false_positive_rate(params, kInsertions);
        std::printf("%8u %4u %14.4f %14.4f\n", params.bits, params.hash_count,
                    measured, theory);
        if (params.bits == 512 && params.hash_count == 4) {
            measured_512_4 = measured;
        }
        if (params.bits == 4096 && params.hash_count == 4) {
            measured_4096_4 = measured;
        }
    }

    // (b) forwarding savings: D directories, each specializing in a few
    // ontologies out of a universe of 22; requests target one ontology.
    std::printf("\nforwarded messages per request, Bloom-selective vs flood:\n");
    std::printf("%12s %16s %10s %12s\n", "directories", "bloom_forwards",
                "flood", "saved");
    constexpr std::size_t kOntologies = 22;
    double saved_at_8 = 0;
    for (const std::size_t dirs : {2ul, 4ul, 8ul, 16ul}) {
        std::vector<BloomFilter> summaries(dirs, BloomFilter(BloomParams{1024, 4}));
        // Directory d caches services over ontologies {d, d+dirs, ...}.
        for (std::size_t d = 0; d < dirs; ++d) {
            for (std::size_t o = d; o < kOntologies; o += dirs) {
                const std::vector<std::string> uris{
                    "http://onto/" + std::to_string(o)};
                summaries[d].insert_ontology_set(uris);
            }
        }
        std::size_t bloom_forwards = 0;
        std::size_t requests = 0;
        for (std::size_t o = 0; o < kOntologies; ++o) {
            const std::vector<std::string> uris{"http://onto/" +
                                                std::to_string(o)};
            for (std::size_t d = 0; d < dirs; ++d) {
                if (summaries[d].possibly_covers(uris)) ++bloom_forwards;
            }
            ++requests;
        }
        const double per_request =
            static_cast<double>(bloom_forwards) / static_cast<double>(requests);
        const double flood = static_cast<double>(dirs);
        std::printf("%12zu %16.2f %10.0f %11.0f%%\n", dirs, per_request, flood,
                    100.0 * (1.0 - per_request / flood));
        if (dirs == 8) saved_at_8 = 1.0 - per_request / flood;
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(measured_512_4 > measured_4096_4,
                 "larger filters yield fewer false positives");
    checks.check(measured_4096_4 < 0.01,
                 "a 4096-bit filter keeps false positives under 1%");
    checks.check(saved_at_8 > 0.5,
                 "Bloom-selective forwarding saves >50% of forwards at 8 "
                 "directories");

    // (c) the routing-precision frontier, written to BENCH_routing.json.
    if (small) {
        run_frontier(240, 4, /*small=*/true, /*final_size=*/true, checks);
    } else {
        run_frontier(1000, 8, /*small=*/false, /*final_size=*/false, checks);
        run_frontier(10000, 8, /*small=*/false, /*final_size=*/true, checks);
    }

    std::printf("\n");
    return checks.finish("ablation_bloom");
}
