// Ablation A2 — Bloom-filter directory summaries (§4).
//
// Two questions the paper's design hinges on:
//   (a) how the false-positive rate — the probability a directory is
//       needlessly queried — depends on filter size m and hash count k,
//       and how close measurement is to the (1 - e^{-kn/m})^k theory;
//   (b) how many forwarded request messages Bloom-selective forwarding
//       saves against flooding every directory, at various backbone sizes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bloom/bloom_filter.hpp"

using namespace sariadne;
using bloom::BloomFilter;
using bloom::BloomParams;

int main() {
    bench::print_header(
        "Ablation A2: Bloom summary false positives and forwarding savings",
        "k and m can be chosen so that the probability of a false positive "
        "is minimized (§4)");

    constexpr std::size_t kInsertions = 64;  // ontology sets per directory
    std::printf("\nfalse-positive rate, %zu inserted ontology sets:\n",
                kInsertions);
    std::printf("%8s %4s %14s %14s\n", "m_bits", "k", "measured", "theory");

    double measured_512_4 = 0;
    double measured_4096_4 = 0;
    for (const BloomParams params :
         {BloomParams{512, 2}, BloomParams{512, 4}, BloomParams{1024, 4},
          BloomParams{2048, 4}, BloomParams{4096, 4}, BloomParams{4096, 8}}) {
        BloomFilter filter(params);
        for (std::size_t i = 0; i < kInsertions; ++i) {
            filter.insert(
                BloomFilter::element_key("member-" + std::to_string(i)));
        }
        int false_positives = 0;
        constexpr int kProbes = 50000;
        for (int i = 0; i < kProbes; ++i) {
            if (filter.possibly_contains(
                    BloomFilter::element_key("absent-" + std::to_string(i)))) {
                ++false_positives;
            }
        }
        const double measured = static_cast<double>(false_positives) / kProbes;
        const double theory =
            BloomFilter::expected_false_positive_rate(params, kInsertions);
        std::printf("%8u %4u %14.4f %14.4f\n", params.bits, params.hash_count,
                    measured, theory);
        if (params.bits == 512 && params.hash_count == 4) {
            measured_512_4 = measured;
        }
        if (params.bits == 4096 && params.hash_count == 4) {
            measured_4096_4 = measured;
        }
    }

    // (b) forwarding savings: D directories, each specializing in a few
    // ontologies out of a universe of 22; requests target one ontology.
    std::printf("\nforwarded messages per request, Bloom-selective vs flood:\n");
    std::printf("%12s %16s %10s %12s\n", "directories", "bloom_forwards",
                "flood", "saved");
    constexpr std::size_t kOntologies = 22;
    double saved_at_8 = 0;
    for (const std::size_t dirs : {2ul, 4ul, 8ul, 16ul}) {
        std::vector<BloomFilter> summaries(dirs, BloomFilter(BloomParams{1024, 4}));
        // Directory d caches services over ontologies {d, d+dirs, ...}.
        for (std::size_t d = 0; d < dirs; ++d) {
            for (std::size_t o = d; o < kOntologies; o += dirs) {
                const std::vector<std::string> uris{
                    "http://onto/" + std::to_string(o)};
                summaries[d].insert_ontology_set(uris);
            }
        }
        std::size_t bloom_forwards = 0;
        std::size_t requests = 0;
        for (std::size_t o = 0; o < kOntologies; ++o) {
            const std::vector<std::string> uris{"http://onto/" +
                                                std::to_string(o)};
            for (std::size_t d = 0; d < dirs; ++d) {
                if (summaries[d].possibly_covers(uris)) ++bloom_forwards;
            }
            ++requests;
        }
        const double per_request =
            static_cast<double>(bloom_forwards) / static_cast<double>(requests);
        const double flood = static_cast<double>(dirs);
        std::printf("%12zu %16.2f %10.0f %11.0f%%\n", dirs, per_request, flood,
                    100.0 * (1.0 - per_request / flood));
        if (dirs == 8) saved_at_8 = 1.0 - per_request / flood;
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(measured_512_4 > measured_4096_4,
                 "larger filters yield fewer false positives");
    checks.check(measured_4096_4 < 0.01,
                 "a 4096-bit filter keeps false positives under 1%");
    checks.check(saved_at_8 > 0.5,
                 "Bloom-selective forwarding saves >50% of forwards at 8 "
                 "directories");
    std::printf("\n");
    return checks.finish("ablation_bloom");
}
