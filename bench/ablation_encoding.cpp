// Ablation A1 — interval-encoding capacity and speed (§3.2).
//
// The paper reports, for p=2, k=5, 64-bit doubles: at most 1071 entries on
// the first hierarchy level and 462 nesting levels for first entries. Our
// slots nest as absolute sub-intervals of [0,1), so per-level entries are
// bounded by the exponent range (thousands) but nesting depth by the
// 52-bit mantissa (~52/log2(2k) levels) — see EXPERIMENTS.md for the
// deviation discussion. The bench prints measured capacities across
// (p, k) choices, the per-concept interval replication on DAG-shaped
// ontologies, and the core speed claim: subsumption via interval
// containment vs BFS over the classified taxonomy.
#include <cstdio>

#include "bench_util.hpp"
#include "encoding/code_table.hpp"
#include "reasoner/knowledge_base.hpp"
#include "encoding/lin_encoding.hpp"
#include "reasoner/reasoner.hpp"
#include "workload/ontology_gen.hpp"

using namespace sariadne;
using encoding::EncodingParams;

int main() {
    bench::print_header(
        "Ablation A1: interval-encoding capacity and query speed",
        "paper (p=2,k=5): 1071 first-level entries, 462 first-entry levels; "
        "subsumption reduces to a numeric comparison of codes");

    std::printf("\ncapacity by encoding parameters:\n");
    std::printf("%4s %4s %20s %16s\n", "p", "k", "entries_per_level",
                "nesting_depth");
    std::uint64_t entries_2_5 = 0;
    std::uint64_t depth_2_5 = 0;
    for (const EncodingParams params :
         {EncodingParams{2, 2}, EncodingParams{2, 5}, EncodingParams{2, 16},
          EncodingParams{3, 5}, EncodingParams{4, 4}}) {
        const auto entries = encoding::max_entries_per_level(params);
        const auto depth = encoding::max_nesting_depth(params);
        std::printf("%4u %4u %20llu %16llu\n", params.p, params.k,
                    static_cast<unsigned long long>(entries),
                    static_cast<unsigned long long>(depth));
        if (params.p == 2 && params.k == 5) {
            entries_2_5 = entries;
            depth_2_5 = depth;
        }
    }
    std::printf("paper reference (p=2,k=5): 1071 entries, 462 levels "
                "(different nesting normalization; see EXPERIMENTS.md)\n");

    // Replication cost of multi-parent concepts.
    std::printf("\ninterval replication on generated ontologies:\n");
    std::printf("%10s %12s %14s %14s\n", "classes", "aliases", "occurrences",
                "per_concept");
    for (const std::size_t classes : {50ul, 100ul, 200ul}) {
        workload::OntologyGenConfig config;
        config.class_count = classes;
        config.alias_count = classes / 10;
        config.intersection_count = classes / 20;
        Rng rng(classes);
        const onto::Ontology o = workload::generate_ontology("u", config, rng);
        reasoner::RuleReasoner engine;
        const auto taxonomy = engine.classify(o);
        const auto table = encoding::CodeTable::build(o, taxonomy);
        std::printf("%10zu %12zu %14zu %14.2f\n", o.class_count(),
                    config.alias_count, table.total_occurrences(),
                    static_cast<double>(table.total_occurrences()) /
                        static_cast<double>(o.class_count()));
    }

    // Speed: encoded containment vs taxonomy BFS distance.
    workload::OntologyGenConfig config;
    config.class_count = 99;
    Rng rng(5);
    const onto::Ontology o = workload::generate_ontology("u", config, rng);
    reasoner::RuleReasoner engine;
    const auto taxonomy = engine.classify(o);
    const auto table = encoding::CodeTable::build(o, taxonomy);

    const std::size_t n = o.class_count();
    volatile std::int64_t sink = 0;
    const double encoded_ms = bench::median_ms(9, [&] {
        std::int64_t acc = 0;
        for (onto::ConceptId a = 0; a < n; ++a) {
            for (onto::ConceptId b = 0; b < n; ++b) {
                const auto d = table.distance(a, b);
                acc += d ? *d : -1;
            }
        }
        sink = acc;
    });
    const double taxonomy_ms = bench::median_ms(9, [&] {
        std::int64_t acc = 0;
        for (onto::ConceptId a = 0; a < n; ++a) {
            for (onto::ConceptId b = 0; b < n; ++b) {
                const auto d = taxonomy.distance(a, b);
                acc += d ? *d : -1;
            }
        }
        sink = acc;
    });
    (void)sink;

    std::printf("\nall-pairs d() over %zu classes: encoded codes %.3f ms, "
                "taxonomy BFS %.3f ms (%.1fx)\n",
                n, encoded_ms, taxonomy_ms, taxonomy_ms / encoded_ms);

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(entries_2_5 >= 1000,
                 "p=2,k=5 supports >=1000 entries per level (paper: 1071)");
    checks.check(depth_2_5 >= 14,
                 "p=2,k=5 nests deeper than any realistic service ontology");
    checks.check(encoded_ms < taxonomy_ms,
                 "encoded d() is faster than reasoner-taxonomy BFS d()");
    std::printf("\n");
    return checks.finish("ablation_encoding");
}
