// Publish/churn throughput at directory scale — the bulk-ingest A/B.
//
// Three directories ingest the same service stream under the same churn
// schedule (publish a segment, withdraw a slice of the survivors, repeat),
// interleaved segment by segment so scheduler noise lands on every side
// equally:
//
//   seed     per-publish ingest, reachability pruning OFF — the insert
//            path as it was before the bitset work
//   pruned   per-publish ingest, reachability pruning ON
//   batched  publish_batch per segment, reachability pruning ON
//
// Besides throughput, the run asserts the probe-accounting identity: the
// classification traversal is the same with pruning on or off, every
// encountered vertex is settled by exactly one of Match / quick-reject /
// reachability-prune, so capability_matches + quick_rejects +
// reachability_prunes must agree EXACTLY between the seed and pruned
// sides. After the soak every DAG must pass the strict validate() —
// bitsets equal BFS ground truth, no transitively redundant edges.
//
// Results land in BENCH_publish.json (bench_util upsert, same line format
// as BENCH_matching.json).
//
// Usage: publish_churn [--services N] [--batch B] [--universe U]
//                      [--classes C] [--seed S] [--out FILE]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "matching/oracles.hpp"
#include "support/rng.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

struct Options {
    std::size_t services = 100000;
    std::size_t batch = 1024;
    std::size_t universe = 22;
    std::size_t classes = 30;
    std::uint64_t seed = 2006;
    std::string out = "BENCH_publish.json";
};

/// One side of the A/B: a directory plus its measured samples.
struct Side {
    const char* name;
    bool batched;
    directory::SemanticDirectory directory;
    std::vector<directory::ServiceId> live;
    std::vector<double> publish_us;
    std::vector<double> remove_us;

    Side(const char* name_, bool batched_, encoding::KnowledgeBase& kb,
         directory::DagTuning tuning)
        : name(name_), batched(batched_), directory(kb, {}, nullptr, tuning) {}
};

std::uint64_t probe_sum(const directory::MatchStats& stats) {
    return stats.capability_matches + stats.quick_rejects +
           stats.reachability_prunes;
}

}  // namespace

int main(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--services") {
            options.services = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--batch") {
            options.batch = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--universe") {
            options.universe = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--classes") {
            options.classes = std::strtoul(next(), nullptr, 10);
        } else if (flag == "--seed") {
            options.seed = std::strtoull(next(), nullptr, 10);
        } else if (flag == "--out") {
            options.out = next();
        } else {
            std::fprintf(stderr,
                         "usage: %s [--services N] [--batch B] [--universe U] "
                         "[--classes C] [--seed S] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (options.batch == 0) options.batch = 1;

    bench::print_header(
        "Publish/churn throughput: batched ingest + reachability pruning",
        "bulk publish and O(1) reachability make churn ingest beat the "
        "per-publish seed path at directory scale");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = options.classes;
    workload::ServiceWorkload workload(workload::generate_universe(
        options.universe, onto_config, options.seed));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    // Pre-generate the stream once so generation cost stays out of every
    // side's measurement.
    std::printf("\ngenerating %zu services ...\n", options.services);
    std::vector<desc::ServiceDescription> stream;
    stream.reserve(options.services);
    for (std::size_t i = 0; i < options.services; ++i) {
        stream.push_back(workload.service(i));
    }

    std::vector<std::unique_ptr<Side>> sides;
    sides.push_back(std::make_unique<Side>(
        "seed", false, kb, directory::DagTuning{/*reachability_pruning=*/false}));
    sides.push_back(std::make_unique<Side>(
        "pruned", false, kb, directory::DagTuning{/*reachability_pruning=*/true}));
    sides.push_back(std::make_unique<Side>(
        "batched", true, kb, directory::DagTuning{/*reachability_pruning=*/true}));

    // Churn schedule: after each published segment, withdraw a quarter of
    // the survivors picked deterministically, so every side removes the
    // services published at the same stream positions.
    SplitMix64 churn_rng(options.seed ^ 0xC0DEC0DEULL);
    std::vector<std::size_t> removal_picks;  // indices into `live`, per wave

    std::printf("ingesting in segments of %zu (interleaved A/B/...)\n",
                options.batch);
    std::size_t offset = 0;
    while (offset < stream.size()) {
        const std::size_t end =
            std::min(offset + options.batch, stream.size());

        // Publish this segment on every side, one after the other.
        for (const auto& side_ptr : sides) {
            Side& side = *side_ptr;
            if (side.batched) {
                std::vector<desc::ServiceDescription> segment(
                    stream.begin() + static_cast<std::ptrdiff_t>(offset),
                    stream.begin() + static_cast<std::ptrdiff_t>(end));
                Stopwatch stopwatch;
                const auto receipts =
                    side.directory.publish_batch(std::move(segment));
                const double per_op_us =
                    stopwatch.elapsed_ms() * 1000.0 /
                    static_cast<double>(end - offset);
                for (const auto& receipt : receipts) {
                    side.live.push_back(receipt.id);
                    side.publish_us.push_back(per_op_us);
                }
            } else {
                for (std::size_t i = offset; i < end; ++i) {
                    desc::ServiceDescription copy = stream[i];
                    Stopwatch stopwatch;
                    const auto receipt =
                        side.directory.publish(std::move(copy));
                    side.publish_us.push_back(stopwatch.elapsed_ms() * 1000.0);
                    side.live.push_back(receipt.id);
                }
            }
        }

        // Churn wave: withdraw a quarter of the segment's size, picked
        // across ALL survivors, so the directory keeps growing (3/4 of the
        // stream is resident at the end) while old services keep leaving.
        // The same picks (positions into the live list) are replayed on
        // every side, so all three directories stay structurally in step.
        const std::size_t survivors = sides[0]->live.size();
        const std::size_t wave = (end - offset) / 4;
        removal_picks.clear();
        for (std::size_t k = 0; k < wave; ++k) {
            removal_picks.push_back(churn_rng.next() %
                                    (survivors - removal_picks.size()));
        }
        for (const auto& side_ptr : sides) {
            Side& side = *side_ptr;
            for (const std::size_t pick : removal_picks) {
                const directory::ServiceId id = side.live[pick];
                side.live[pick] = side.live.back();
                side.live.pop_back();
                Stopwatch stopwatch;
                side.directory.remove(id);
                side.remove_us.push_back(stopwatch.elapsed_ms() * 1000.0);
            }
        }
        offset = end;
    }

    std::printf("\n%10s %10s %12s %12s %14s %16s %16s\n", "side", "cached",
                "pub_ops/s", "rm_ops/s", "matches", "quick_rejects",
                "reach_prunes");
    std::vector<bench::LatencyStats> publish_stats;
    std::vector<bench::LatencyStats> remove_stats;
    for (const auto& side_ptr : sides) {
        Side& side = *side_ptr;
        const bench::LatencyStats pub = bench::summarize_us(side.publish_us);
        const bench::LatencyStats rem = bench::summarize_us(side.remove_us);
        const auto stats = side.directory.lifetime_stats();
        std::printf("%10s %10zu %12.0f %12.0f %14llu %16llu %16llu\n",
                    side.name, side.directory.service_count(), pub.ops_per_sec,
                    rem.ops_per_sec,
                    static_cast<unsigned long long>(stats.capability_matches),
                    static_cast<unsigned long long>(stats.quick_rejects),
                    static_cast<unsigned long long>(
                        stats.reachability_prunes));
        publish_stats.push_back(pub);
        remove_stats.push_back(rem);
    }

    // Strict post-soak validation: every DAG, every side — bitsets equal
    // BFS ground truth and no transitively redundant edge survived the
    // splices.
    matching::EncodedOracle oracle(kb);
    bool all_valid = true;
    for (const auto& side_ptr : sides) {
        Side& side = *side_ptr;
        side.directory.dags().for_each_dag(
            [&](const directory::CapabilityDag& dag) {
                if (!dag.validate(oracle)) {
                    all_valid = false;
                    std::fprintf(stderr, "validate() FAILED on side %s\n",
                                 side.name);
                }
            });
    }

    const auto seed_stats = sides[0]->directory.lifetime_stats();
    const auto pruned_stats = sides[1]->directory.lifetime_stats();

    std::printf("\n");
    bench::ShapeChecks checks;
    // The perf claims (prunes fire, batching wins) need a dense directory:
    // below ~20k services the doomed cones are rarely re-encountered and
    // batch setup cost dominates, so the quick smoke run only asserts the
    // correctness properties.
    const bool at_scale = options.services >= 20000;
    checks.check(seed_stats.reachability_prunes == 0,
                 "seed side (pruning off) counts zero reachability prunes");
    if (at_scale) {
        checks.check(pruned_stats.reachability_prunes > 0,
                     "pruned side actually prunes");
    }
    checks.check(probe_sum(seed_stats) == probe_sum(pruned_stats),
                 "probe accounting exact: matches + quick_rejects + "
                 "reachability_prunes identical with pruning on or off");
    checks.check(sides[0]->directory.service_count() ==
                         sides[1]->directory.service_count() &&
                     sides[1]->directory.service_count() ==
                         sides[2]->directory.service_count(),
                 "all sides converge to the same directory contents");
    if (at_scale) {
        checks.check(publish_stats[2].ops_per_sec > publish_stats[0].ops_per_sec,
                     "batched + pruned publish beats the seed insert path");
    }
    checks.check(all_valid,
                 "strict validate() (redundant-edge + bitset-vs-BFS) holds "
                 "on every DAG after the churn soak");

    for (std::size_t i = 0; i < sides.size(); ++i) {
        bench::upsert_bench_json(options.out,
                                 std::string("publish_") + sides[i]->name,
                                 publish_stats[i]);
        bench::upsert_bench_json(options.out,
                                 std::string("remove_") + sides[i]->name,
                                 remove_stats[i]);
    }
    std::printf("\nwrote %s\n\n", options.out.c_str());
    return checks.finish("publish_churn");
}
