// Shared utilities for the figure-reproduction benches: repeated-median
// timing, CSV-ish series printing, and qualitative shape checks. Every
// bench prints the series the corresponding paper figure plots, then a
// PASS/FAIL line per qualitative claim; EXPERIMENTS.md records the
// paper-vs-measured comparison.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::bench {

/// Median of `repetitions` timed runs of `body`, in milliseconds.
/// `prepare` runs untimed before each repetition.
inline double median_ms(int repetitions, const std::function<void()>& body,
                        const std::function<void()>& prepare = {}) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repetitions));
    for (int i = 0; i < repetitions; ++i) {
        if (prepare) prepare();
        Stopwatch stopwatch;
        body();
        samples.push_back(stopwatch.elapsed_ms());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct ShapeChecks {
    int passed = 0;
    int failed = 0;

    void check(bool condition, const std::string& claim) {
        std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", claim.c_str());
        if (condition) {
            ++passed;
        } else {
            ++failed;
        }
    }

    /// Prints the summary line and returns the process exit code.
    int finish(const char* bench_name) const {
        std::printf("%s: %d shape check(s) passed, %d failed\n", bench_name,
                    passed, failed);
        return failed == 0 ? 0 : 1;
    }
};

/// Prints a JSON snapshot of a metrics registry, labelled, so bench logs
/// carry the same quantities the CLI's --metrics exposes (machine-grep
/// friendly: one JSON object on one line).
inline void emit_metrics(const obs::MetricsRegistry& registry,
                         const char* label) {
    std::printf("\nmetrics[%s]: %s\n", label, registry.to_json().c_str());
}

inline void print_header(const char* title, const char* paper_claim) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("paper claim: %s\n", paper_claim);
    std::printf("==============================================================\n");
}

}  // namespace sariadne::bench
