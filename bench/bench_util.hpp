// Shared utilities for the figure-reproduction benches: repeated-median
// timing, CSV-ish series printing, and qualitative shape checks. Every
// bench prints the series the corresponding paper figure plots, then a
// PASS/FAIL line per qualitative claim; EXPERIMENTS.md records the
// paper-vs-measured comparison.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace sariadne::bench {

/// Median of `repetitions` timed runs of `body`, in milliseconds.
/// `prepare` runs untimed before each repetition.
inline double median_ms(int repetitions, const std::function<void()>& body,
                        const std::function<void()>& prepare = {}) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repetitions));
    for (int i = 0; i < repetitions; ++i) {
        if (prepare) prepare();
        Stopwatch stopwatch;
        body();
        samples.push_back(stopwatch.elapsed_ms());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct ShapeChecks {
    int passed = 0;
    int failed = 0;

    void check(bool condition, const std::string& claim) {
        std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", claim.c_str());
        if (condition) {
            ++passed;
        } else {
            ++failed;
        }
    }

    /// Prints the summary line and returns the process exit code.
    int finish(const char* bench_name) const {
        std::printf("%s: %d shape check(s) passed, %d failed\n", bench_name,
                    passed, failed);
        return failed == 0 ? 0 : 1;
    }
};

/// Prints a JSON snapshot of a metrics registry, labelled, so bench logs
/// carry the same quantities the CLI's --metrics exposes (machine-grep
/// friendly: one JSON object on one line).
inline void emit_metrics(const obs::MetricsRegistry& registry,
                         const char* label) {
    std::printf("\nmetrics[%s]: %s\n", label, registry.to_json().c_str());
}

/// Throughput + tail latency for one kernel, derived from repeated
/// batch-amortized samples. The consolidated BENCH_matching.json report is
/// built from these.
struct LatencyStats {
    double ops_per_sec = 0;
    double p50_us = 0;
    double p99_us = 0;
    std::uint64_t samples = 0;
};

/// Nearest-rank percentile index into a sorted sample of size n:
/// ceil(p/100 * n) - 1. For n=1 every percentile reads the sole sample;
/// for n=100, p50 reads index 49 and p99 index 98 — the n/2-style
/// shortcuts read one element high for small n, which skews the
/// BENCH_*.json trajectories that gate future PRs.
inline std::size_t percentile_index(std::size_t n, unsigned percentile) {
    const std::size_t rank = (n * percentile + 99) / 100;  // ceil
    return rank == 0 ? 0 : rank - 1;
}

/// Reduces per-operation latency samples (microseconds) to LatencyStats.
/// Sorts `us_samples` in place.
inline LatencyStats summarize_us(std::vector<double>& us_samples) {
    LatencyStats stats;
    if (us_samples.empty()) return stats;
    std::sort(us_samples.begin(), us_samples.end());
    const std::size_t n = us_samples.size();
    stats.samples = n;
    stats.p50_us = us_samples[percentile_index(n, 50)];
    stats.p99_us = us_samples[percentile_index(n, 99)];
    // Throughput over the samples at or below p99: scheduler preemptions
    // on shared runners show up as rare 100x spikes that would otherwise
    // dominate the mean.
    const std::size_t kept = percentile_index(n, 99) + 1;
    double total_us = 0;
    for (std::size_t i = 0; i < kept; ++i) total_us += us_samples[i];
    stats.ops_per_sec =
        total_us > 0 ? 1e6 * static_cast<double>(kept) / total_us : 0;
    return stats;
}

/// Times `samples` batches of `batch` calls to `body` and reports
/// per-operation stats. Batching amortizes the stopwatch overhead for
/// nanosecond-scale kernels; p50/p99 are per-op within a batch.
inline LatencyStats sample_kernel(int samples, int batch,
                                  const std::function<void()>& body) {
    std::vector<double> us;
    us.reserve(static_cast<std::size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        Stopwatch stopwatch;
        for (int i = 0; i < batch; ++i) body();
        us.push_back(stopwatch.elapsed_ms() * 1000.0 / batch);
    }
    return summarize_us(us);
}

inline std::string to_json(const LatencyStats& stats) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"ops_per_sec\": %.0f, \"p50_us\": %.3f, \"p99_us\": "
                  "%.3f, \"samples\": %llu}",
                  stats.ops_per_sec, stats.p50_us, stats.p99_us,
                  static_cast<unsigned long long>(stats.samples));
    return buffer;
}

/// Inserts or replaces one `"name": value` entry in a one-entry-per-line
/// JSON object file (the consolidated BENCH_matching.json report). Several
/// benches contribute to the same file, so the update is an upsert: other
/// benches' entries survive. The format is deliberately line-based — no
/// JSON parser in the toolchain — so entry values must be single-line.
inline void upsert_bench_json(const std::string& path, const std::string& name,
                              const std::string& value_json) {
    std::vector<std::pair<std::string, std::string>> entries;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            const auto key_open = line.find('"');
            if (key_open == std::string::npos) continue;  // brace lines
            const auto key_close = line.find('"', key_open + 1);
            const auto colon = line.find(':', key_close);
            if (key_close == std::string::npos || colon == std::string::npos) {
                continue;
            }
            std::string key =
                line.substr(key_open + 1, key_close - key_open - 1);
            std::string value = line.substr(colon + 1);
            while (!value.empty() &&
                   (value.back() == ',' || value.back() == ' ' ||
                    value.back() == '\r')) {
                value.pop_back();
            }
            while (!value.empty() && value.front() == ' ') {
                value.erase(value.begin());
            }
            entries.emplace_back(std::move(key), std::move(value));
        }
    }
    bool replaced = false;
    for (auto& entry : entries) {
        if (entry.first == name) {
            entry.second = value_json;
            replaced = true;
        }
    }
    if (!replaced) entries.emplace_back(name, value_json);

    std::ofstream out(path, std::ios::trunc);
    out << "{\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        out << "  \"" << entries[i].first << "\": " << entries[i].second
            << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "}\n";
}

inline void upsert_bench_json(const std::string& path, const std::string& name,
                              const LatencyStats& stats) {
    upsert_bench_json(path, name, to_json(stats));
}

inline void print_header(const char* title, const char* paper_claim) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("paper claim: %s\n", paper_claim);
    std::printf("==============================================================\n");
}

}  // namespace sariadne::bench
