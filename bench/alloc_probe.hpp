// Global-allocation probe for the zero-allocation gates: replaces the
// global operator new family with malloc wrappers that bump a process-wide
// counter, so a bench can assert that a steady-state code region performs
// exactly zero heap allocations (the arena-vs-heap distinction the
// `matching.query_allocs` metric tracks from the inside, observed from the
// outside).
//
// Include from exactly ONE translation unit per binary: the operators are
// non-inline definitions (the standard requires replacement functions not
// be inline), so a second including TU is an ODR violation at link time.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace sariadne::bench_alloc {

inline std::atomic<std::uint64_t> g_allocations{0};

/// Allocations performed by this process so far (monotone).
inline std::uint64_t allocations() noexcept {
    return g_allocations.load(std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::size_t alignment) noexcept {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (alignment < sizeof(void*)) alignment = sizeof(void*);
    void* p = nullptr;
    if (::posix_memalign(&p, alignment, size != 0 ? size : alignment) != 0) {
        return nullptr;
    }
    return p;
}

}  // namespace sariadne::bench_alloc

// The nothrow and (on this toolchain) aligned-nothrow forms forward to the
// ordinary/aligned replacements per [new.delete], so replacing the four
// throwing operators below counts every allocation path.
//
// noinline keeps the optimizer from folding the malloc/free bodies into
// call sites, which would both defeat the count and trip
// -Wmismatched-new-delete (free of a pointer it believes came from a
// pristine operator new).
#define SARIADNE_ALLOC_PROBE_FN __attribute__((noinline))

SARIADNE_ALLOC_PROBE_FN void* operator new(std::size_t size) {
    if (void* p = sariadne::bench_alloc::counted_alloc(size)) return p;
    throw std::bad_alloc();
}

SARIADNE_ALLOC_PROBE_FN void* operator new[](std::size_t size) {
    if (void* p = sariadne::bench_alloc::counted_alloc(size)) return p;
    throw std::bad_alloc();
}

SARIADNE_ALLOC_PROBE_FN void* operator new(std::size_t size,
                                           std::align_val_t alignment) {
    if (void* p = sariadne::bench_alloc::counted_aligned_alloc(
            size, static_cast<std::size_t>(alignment))) {
        return p;
    }
    throw std::bad_alloc();
}

SARIADNE_ALLOC_PROBE_FN void* operator new[](std::size_t size,
                                             std::align_val_t alignment) {
    if (void* p = sariadne::bench_alloc::counted_aligned_alloc(
            size, static_cast<std::size_t>(alignment))) {
        return p;
    }
    throw std::bad_alloc();
}

SARIADNE_ALLOC_PROBE_FN void operator delete(void* p) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete[](void* p) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete(void* p, std::size_t) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete[](void* p, std::size_t) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete(void* p,
                                             std::align_val_t) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete[](void* p,
                                               std::align_val_t) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete(void* p, std::size_t,
                                             std::align_val_t) noexcept {
    std::free(p);
}
SARIADNE_ALLOC_PROBE_FN void operator delete[](void* p, std::size_t,
                                               std::align_val_t) noexcept {
    std::free(p);
}

#undef SARIADNE_ALLOC_PROBE_FN
