// Figure 2 — "Time taken to match a requested and a provided capability".
//
// The paper matches two capabilities (7 inputs, 3 outputs each) over an
// ontology of 99 OWL classes and 39 properties with Racer, FaCT++ and
// Pellet on a 1.6 GHz Centrino: every reasoner lands at ~4-5 s per match,
// with 76-78 % of the time spent loading and classifying the ontology.
//
// Substitution (DESIGN.md §2): full SHIQ reasoners are emulated by cost
// profiles wrapping our real classification engines; the bench reports
//   (a) the real, measured cost of the full online pipeline
//       (parse → load+classify → query) using our engines, and
//   (b) the modeled 2006-scale cost per profile, which must reproduce the
//       published structure (4-5 s total, 76-78 % load+classify).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "description/online_matcher.hpp"
#include "ontology/loader.hpp"
#include "reasoner/profiles.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

std::unique_ptr<reasoner::Reasoner> engine_for(const std::string& name) {
    if (name == "Racer") return std::make_unique<reasoner::TableauLiteReasoner>();
    if (name == "FaCT++") return std::make_unique<reasoner::NaiveClosureReasoner>();
    return std::make_unique<reasoner::RuleReasoner>();
}

}  // namespace

int main() {
    bench::print_header(
        "Figure 2: cost of matching two capabilities with a DL reasoner",
        "4-5 s per match; loading+classifying ontologies is 76-78% of it");

    const onto::Ontology fig2 = workload::fig2_ontology();
    std::printf("workload: ontology with %zu classes, %zu properties; "
                "capabilities with 7 inputs, 3 outputs\n\n",
                fig2.class_count(), fig2.property_count());
    const auto [provided, required] = workload::fig2_capabilities(fig2);
    const std::string fig2_xml = onto::save_ontology(fig2);

    bench::ShapeChecks checks;

    std::printf("%-8s | %14s | %12s | %10s | %7s || real pipeline (measured on this host)\n",
                "reasoner", "load+classify", "matching", "total(ms)", "load%");
    std::printf("%-8s | %14s | %12s | %10s | %7s || %12s %18s %12s\n", "", "(modeled ms)",
                "(modeled ms)", "", "", "parse(ms)", "load+classify(ms)", "query(ms)");
    std::printf("---------+----------------+--------------+------------+---------++---------------------------------------------\n");

    std::vector<reasoner::DlReasonerProfile> profiles;
    profiles.push_back(reasoner::DlReasonerProfile::racer_like());
    profiles.push_back(reasoner::DlReasonerProfile::factpp_like());
    profiles.push_back(reasoner::DlReasonerProfile::pellet_like());

    for (auto& profile : profiles) {
        // Real measured pipeline with the profile's engine (medians of 5).
        matching::OnlineMatcher matcher({fig2_xml}, engine_for(profile.name()));
        matching::OnlineMatchTiming timing;
        double total_real = 1e18;
        std::size_t queries = 0;
        for (int rep = 0; rep < 5; ++rep) {
            const auto outcome = matcher.match(provided, required);
            if (!outcome.matched) {
                std::fprintf(stderr, "fig2 capabilities failed to match!\n");
                return 1;
            }
            if (matcher.last_timing().total_ms() < total_real) {
                total_real = matcher.last_timing().total_ms();
                timing = matcher.last_timing();
            }
            queries = matcher.last_timing().subsumption_queries;
        }

        const auto modeled = profile.model_match(fig2, queries);
        std::printf("%-8s | %14.0f | %12.0f | %10.0f | %6.1f%% || %12.3f %18.3f %12.3f\n",
                    profile.name().c_str(), modeled.load_classify_ms,
                    modeled.matching_ms, modeled.total_ms(),
                    100.0 * modeled.load_fraction(), timing.parse_ms,
                    timing.load_classify_ms, timing.query_ms);

        checks.check(modeled.total_ms() >= 3500 && modeled.total_ms() <= 5500,
                     profile.name() + ": modeled total in the 4-5 s band");
        checks.check(modeled.load_fraction() >= 0.72 &&
                         modeled.load_fraction() <= 0.82,
                     profile.name() + ": load+classify is 76-78% (+/-4) of total");
        checks.check(timing.load_classify_ms > timing.query_ms,
                     profile.name() +
                         ": real pipeline also dominated by load+classify");
    }

    std::printf("\ncontext: the paper cites ~160 ms for a syntactic UDDI "
                "registry lookup — 25-30x below any DL-reasoner match.\n\n");
    return checks.finish("fig2_reasoner_cost");
}
