// Ablation A5 — sensitivity of the §3.3 DAG classification.
//
// Why is the optimized query of Figure 9 nearly constant? Two mechanisms:
// the ontology index preselects DAGs, and root-probing prunes whole
// sub-hierarchies. This bench isolates each: it sweeps (a) the size of
// the ontology universe (more ontologies → more, smaller DAGs → stronger
// index pruning) and (b) the relatedness of capabilities (one shared
// ontology → one big DAG → pruning must come from the hierarchy alone),
// reporting the number of capability-level Match evaluations per query —
// the paper's "number of semantic matches performed".
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

struct SweepPoint {
    double dag_matches = 0;
    double flat_matches = 0;
    double dags = 0;
    double vertices = 0;
};

SweepPoint run_point(std::size_t ontologies, std::size_t services,
                     std::size_t caps_per_service = 1) {
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    auto universe = workload::generate_universe(ontologies, onto_config, 777);
    encoding::KnowledgeBase kb;
    for (const auto& o : universe) kb.register_ontology(o);
    workload::ServiceGenConfig svc_config;
    svc_config.capabilities_per_service = caps_per_service;
    workload::ServiceWorkload workload(std::move(universe), svc_config);

    directory::SemanticDirectory dag(kb);
    directory::FlatDirectory flat(kb);
    for (std::size_t i = 0; i < services; ++i) {
        dag.publish(workload.service(i));
        flat.publish(workload.service(i));
    }

    SweepPoint point;
    point.dags = static_cast<double>(dag.dag_count());
    std::size_t vertices = 0;
    dag.dags().for_each_dag([&](const directory::CapabilityDag& graph) {
        vertices += graph.vertex_count();
    });
    point.vertices = static_cast<double>(vertices);

    constexpr int kRequests = 25;
    std::uint64_t dag_matches = 0;
    std::uint64_t flat_matches = 0;
    for (int r = 0; r < kRequests; ++r) {
        const auto resolved = desc::resolve_request(
            workload.matching_request((static_cast<std::size_t>(r) * 3) % services),
            kb.registry());
        dag_matches += dag.query_resolved(resolved).stats.capability_matches;
        directory::MatchStats stats;
        directory::QueryTiming timing;
        (void)flat.query(resolved, stats, timing);
        flat_matches += stats.capability_matches;
    }
    point.dag_matches = static_cast<double>(dag_matches) / kRequests;
    point.flat_matches = static_cast<double>(flat_matches) / kRequests;
    return point;
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation A5: where the DAG query savings come from",
        "classification reduces the number of semantic matches per request "
        "(§3.3); the ontology index and root-pruning each contribute");

    constexpr std::size_t kServices = 100;
    std::printf("\nsweep: ontology-universe size (%zu services):\n", kServices);
    std::printf("%12s %8s %10s %14s %14s %10s\n", "ontologies", "dags",
                "vertices", "dag_matches", "flat_matches", "savings");

    double matches_1 = 0;
    double matches_22 = 0;
    for (const std::size_t ontologies : {1ul, 2ul, 5ul, 11ul, 22ul}) {
        const SweepPoint point = run_point(ontologies, kServices);
        std::printf("%12zu %8.0f %10.0f %14.1f %14.1f %9.0f%%\n", ontologies,
                    point.dags, point.vertices, point.dag_matches,
                    point.flat_matches,
                    100.0 * (1.0 - point.dag_matches / point.flat_matches));
        if (ontologies == 1) matches_1 = point.dag_matches;
        if (ontologies == 22) matches_22 = point.dag_matches;
    }

    std::printf("\nsweep: directory size (22 ontologies):\n");
    std::printf("%10s %14s %14s\n", "services", "dag_matches", "flat_matches");
    double dag_at_25 = 0;
    double dag_at_100 = 0;
    for (const std::size_t services : {25ul, 50ul, 100ul}) {
        const SweepPoint point = run_point(22, services);
        std::printf("%10zu %14.1f %14.1f\n", services, point.dag_matches,
                    point.flat_matches);
        if (services == 25) dag_at_25 = point.dag_matches;
        if (services == 100) dag_at_100 = point.dag_matches;
    }

    std::printf("\nsweep: capabilities per service (22 ontologies, 50 services):\n");
    std::printf("%14s %14s %14s\n", "caps/service", "dag_matches",
                "flat_matches");
    double dag_multi_3 = 0;
    double flat_multi_3 = 0;
    for (const std::size_t caps : {1ul, 2ul, 3ul}) {
        const SweepPoint point = run_point(22, 50, caps);
        std::printf("%14zu %14.1f %14.1f\n", caps, point.dag_matches,
                    point.flat_matches);
        if (caps == 3) {
            dag_multi_3 = point.dag_matches;
            flat_multi_3 = point.flat_matches;
        }
    }

    // Reachability-pruning ablation (insert side): one shared ontology
    // forces one big DAG, where classification probes are most numerous
    // and a failed Match dooms the deepest cones. The encounter identity
    // must hold: matches + quick_rejects + reachability_prunes is the
    // same with pruning on or off.
    std::printf("\nreachability pruning (1 ontology, 150 services):\n");
    std::printf("%10s %14s %16s %14s\n", "pruning", "matches",
                "quick_rejects", "reach_prunes");
    std::uint64_t probe_sums[2] = {0, 0};
    std::uint64_t match_counts[2] = {0, 0};
    std::uint64_t prune_counts[2] = {0, 0};
    {
        workload::OntologyGenConfig onto_config;
        onto_config.class_count = 30;
        auto universe = workload::generate_universe(1, onto_config, 777);
        encoding::KnowledgeBase kb;
        for (const auto& o : universe) kb.register_ontology(o);
        workload::ServiceWorkload workload(std::move(universe));
        for (const bool pruning : {false, true}) {
            directory::SemanticDirectory dir(
                kb, {}, nullptr, directory::DagTuning{pruning});
            for (std::size_t i = 0; i < 150; ++i) {
                dir.publish(workload.service(i));
            }
            const auto stats = dir.lifetime_stats();
            std::printf("%10s %14llu %16llu %14llu\n", pruning ? "on" : "off",
                        static_cast<unsigned long long>(stats.capability_matches),
                        static_cast<unsigned long long>(stats.quick_rejects),
                        static_cast<unsigned long long>(
                            stats.reachability_prunes));
            probe_sums[pruning] = stats.capability_matches +
                                  stats.quick_rejects +
                                  stats.reachability_prunes;
            match_counts[pruning] = stats.capability_matches;
            prune_counts[pruning] = stats.reachability_prunes;
        }
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(matches_22 < matches_1,
                 "a larger ontology universe strengthens index pruning");
    checks.check(probe_sums[0] == probe_sums[1],
                 "probe accounting identical with reachability pruning on or "
                 "off");
    // Doomed-cone hits need a dense DAG: at this quick-ablation scale they
    // are rare (publish_churn shows millions at 10^5 services), so only
    // the off-side zero is asserted here.
    checks.check(prune_counts[0] == 0,
                 "pruning-off never counts a reachability prune");
    checks.check(match_counts[1] <= match_counts[0],
                 "pruning never adds oracle matches");
    checks.check(matches_1 < 100.0,
                 "even a single shared ontology (one DAG) probes fewer "
                 "vertices than the flat scan, thanks to root pruning");
    checks.check(dag_at_100 < 4.0 * dag_at_25,
                 "DAG matches grow sublinearly with directory size");
    // Extra capabilities add extra DAG roots, so DAG matches scale with
    // multiplicity too — the classification win is the large constant
    // factor against the flat scan, which must persist.
    checks.check(dag_multi_3 < 0.25 * flat_multi_3,
                 "with 3 capabilities per service the DAG still performs "
                 "<25% of the flat scan's matches");
    std::printf("\n");
    return checks.finish("ablation_dag");
}
