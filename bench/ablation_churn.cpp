// Ablation A6 — discovery availability under directory churn.
//
// The election mechanism exists because pervasive networks lose nodes
// (§4: directories are "dynamically deployed ... to deal with the
// dynamics of pervasive networks"). This bench kills the serving
// directory mid-run and measures how long discovery stays degraded as a
// function of the providers' re-publication period: clients issue a
// matching request every second; availability is the fraction answered
// satisfied, and recovery time the gap until the first satisfied answer
// after the failure.
#include <cstdio>
#include <vector>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "bench_util.hpp"
#include "description/amigos_io.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

struct ChurnResult {
    double availability = 0;      ///< satisfied / issued over the whole run
    double recovery_ms = -1;      ///< failure -> first satisfied answer
};

ChurnResult run(double republish_period_ms,
                workload::ServiceWorkload& workload,
                encoding::KnowledgeBase& kb) {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 500;
    config.adv_timeout_ms = 1500;
    config.election_wait_ms = 30;
    config.republish_period_ms = republish_period_ms;
    config.request_timeout_ms = 2000;
    config.max_request_retries = 5;

    ariadne::DiscoveryNetwork network(net::Topology::grid(4, 4), config, kb);
    network.appoint_directory(5);
    network.start();
    network.run_for(500);
    // Warm the directory through the bulk-publish wire path: each
    // provider ships its document, the last two share one pub-batch
    // datagram — so the availability numbers downstream also certify the
    // batched ingest path serves discovery correctly.
    for (std::size_t i = 0; i < 6; ++i) {
        network.publish_service(static_cast<net::NodeId>(i),
                                workload.service_xml(i));
    }
    network.publish_batch(6, {workload.service_xml(6), workload.service_xml(7)});
    network.run_for(2000);

    constexpr double kFailureAt = 10000;
    constexpr double kRunUntil = 40000;
    std::vector<std::pair<std::uint64_t, double>> issued;  // id, time

    double now = sim(network).now();
    bool failed = false;
    std::size_t tick = 0;
    while (now < kRunUntil) {
        if (!failed && now >= kFailureAt) {
            sim(network).topology().set_up(5, false);
            failed = true;
        }
        issued.emplace_back(
            network.discover(static_cast<net::NodeId>(10 + tick % 6),
                             workload.matching_request_xml(tick % 8)),
            now);
        ++tick;
        network.run_for(1000);
        now = sim(network).now();
        if (sim(network).idle()) break;
    }
    network.run_for(30000);  // drain

    ChurnResult result;
    std::size_t satisfied = 0;
    double first_recovery = -1;
    for (const auto& [id, at] : issued) {
        const auto& outcome = network.outcome(id);
        if (outcome.answered && outcome.satisfied) {
            ++satisfied;
            if (at >= kFailureAt &&
                (first_recovery < 0 || outcome.answered_at < first_recovery)) {
                first_recovery = outcome.answered_at;
            }
        }
    }
    result.availability =
        static_cast<double>(satisfied) / static_cast<double>(issued.size());
    result.recovery_ms = first_recovery < 0 ? -1 : first_recovery - kFailureAt;
    return result;
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation A6: availability under directory failure",
        "re-election plus periodic re-publication restores discovery; "
        "faster re-publication shortens the outage");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(8, onto_config, 31415));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%20s %14s %14s\n", "republish_period", "availability",
                "recovery_ms");
    double avail_fast = 0;
    double avail_slow = 0;
    double recovery_fast = -1;
    for (const double period : {2000.0, 5000.0, 10000.0}) {
        const ChurnResult result = run(period, workload, kb);
        std::printf("%17.0f ms %13.0f%% %14.0f\n", period,
                    100 * result.availability, result.recovery_ms);
        if (period == 2000.0) {
            avail_fast = result.availability;
            recovery_fast = result.recovery_ms;
        }
        if (period == 10000.0) avail_slow = result.availability;
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(recovery_fast >= 0, "discovery recovers after the failure");
    checks.check(avail_fast >= avail_slow,
                 "faster re-publication gives availability at least as good");
    checks.check(avail_fast > 0.7,
                 "availability above 70% across the whole run with 2 s "
                 "re-publication");
    std::printf("\n");
    return checks.finish("ablation_churn");
}
