// Ablation A7 — classification-engine scaling.
//
// The offline cost of the paper's design is ontology classification (once
// per ontology version). Three genuinely different algorithms implement
// it here; this bench sweeps ontology size and axiom richness to show how
// they scale, and why the worklist (rule) engine is the default used by
// the directories: its cost tracks the number of derivable facts rather
// than n^3.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "reasoner/reasoner.hpp"
#include "workload/ontology_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Ablation A7: classification engine scaling",
        "offline classification is affordable at service-ontology sizes; "
        "engines differ asymptotically on large TBoxes");

    std::printf("\nplain hierarchies (aliases, no intersections):\n");
    std::printf("%8s %14s %14s %14s %16s\n", "classes", "naive_ms", "rule_ms",
                "tableau_ms", "facts_derived");

    double naive_small = 0;
    double naive_large = 0;
    double rule_small = 0;
    double rule_large = 0;
    for (const std::size_t classes : {50ul, 100ul, 200ul, 400ul, 800ul}) {
        workload::OntologyGenConfig config;
        config.class_count = classes;
        config.alias_count = classes / 20;
        config.disjoint_pairs = classes / 20;
        Rng rng(classes);
        const onto::Ontology o = workload::generate_ontology("u", config, rng);

        reasoner::NaiveClosureReasoner naive;
        reasoner::RuleReasoner rule;
        reasoner::TableauLiteReasoner tableau;
        const double naive_ms = bench::median_ms(3, [&] { (void)naive.classify(o); });
        const double rule_ms = bench::median_ms(3, [&] { (void)rule.classify(o); });
        const double tableau_ms =
            bench::median_ms(3, [&] { (void)tableau.classify(o); });
        std::printf("%8zu %14.3f %14.3f %14.3f %16llu\n", o.class_count(),
                    naive_ms, rule_ms, tableau_ms,
                    static_cast<unsigned long long>(
                        rule.last_stats().facts_derived));
        if (classes == 50) {
            naive_small = naive_ms;
            rule_small = rule_ms;
        }
        if (classes == 800) {
            naive_large = naive_ms;
            rule_large = rule_ms;
        }
    }

    std::printf("\nrich TBoxes (intersection definitions force fixpoint rounds):\n");
    std::printf("%8s %10s %14s %14s %14s\n", "classes", "defs", "naive_ms",
                "rule_ms", "tableau_ms");
    for (const std::size_t classes : {100ul, 300ul}) {
        workload::OntologyGenConfig config;
        config.class_count = classes;
        config.alias_count = classes / 20;
        config.intersection_count = classes / 10;
        config.disjoint_pairs = 0;
        Rng rng(classes * 3 + 1);
        const onto::Ontology o = workload::generate_ontology("u", config, rng);
        reasoner::NaiveClosureReasoner naive;
        reasoner::RuleReasoner rule;
        reasoner::TableauLiteReasoner tableau;
        std::printf("%8zu %10zu %14.3f %14.3f %14.3f\n", o.class_count(),
                    classes / 10,
                    bench::median_ms(3, [&] { (void)naive.classify(o); }),
                    bench::median_ms(3, [&] { (void)rule.classify(o); }),
                    bench::median_ms(3, [&] { (void)tableau.classify(o); }));
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    const double naive_growth = naive_large / std::max(naive_small, 1e-6);
    const double rule_growth = rule_large / std::max(rule_small, 1e-6);
    checks.check(rule_growth < naive_growth,
                 "the worklist engine scales better than the n^3 closure "
                 "(growth over 16x more classes)");
    checks.check(rule_large < 100.0,
                 "classifying an 800-class ontology stays under 100 ms — "
                 "offline classification is affordable");
    std::printf("\n");
    return checks.finish("ablation_reasoners");
}
