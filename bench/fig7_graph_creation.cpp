// Figure 7 — "Time to create graphs".
//
// Scenario: a freshly elected directory must ingest all service
// descriptions of its vicinity: parse each Amigo-S document and classify
// its capabilities into the ontology-indexed capability DAGs. The paper
// plots, for 1..100 services over 22 ontologies (one provided capability
// per description): time to parse, time to create the graphs, and the
// total — finding that graph creation is negligible next to XML parsing.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Figure 7: time to create capability graphs in an empty directory",
        "graph creation is negligible compared to XML parsing; both grow "
        "linearly with the number of services");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));

    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    // Pre-warm code tables: classification is an offline, once-per-ontology
    // cost, not part of the per-directory graph-creation path.
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%8s %16s %18s %12s %14s\n", "services", "parse_ms",
                "create_graphs_ms", "total_ms", "batched_ms");

    std::vector<std::string> documents;
    for (std::size_t i = 0; i < 100; ++i) {
        documents.push_back(workload.service_xml(i));
    }

    double parse_at_100 = 0;
    double create_at_100 = 0;
    double total_at_10 = 0;
    double total_at_100 = 0;
    double batched_at_100 = 0;
    for (std::size_t count = 10; count <= 100; count += 10) {
        double parse_ms = 0;
        double insert_ms = 0;
        const double total = bench::median_ms(5, [&] {
            directory::SemanticDirectory directory(kb);
            parse_ms = 0;
            insert_ms = 0;
            for (std::size_t i = 0; i < count; ++i) {
                const auto [id, timing] = directory.publish_xml(documents[i]);
                parse_ms += timing.parse_ms;
                insert_ms += timing.insert_ms;
            }
        });
        // The handover scenario's natural shape: parse everything, then
        // classify the whole vicinity in one publish_batch.
        const double batched = bench::median_ms(5, [&] {
            directory::SemanticDirectory directory(kb);
            std::vector<desc::ServiceDescription> parsed;
            parsed.reserve(count);
            for (std::size_t i = 0; i < count; ++i) {
                parsed.push_back(desc::parse_service(documents[i]));
            }
            directory.publish_batch(std::move(parsed));
        });
        std::printf("%8zu %16.3f %18.3f %12.3f %14.3f\n", count, parse_ms,
                    insert_ms, total, batched);
        if (count == 10) total_at_10 = total;
        if (count == 100) {
            parse_at_100 = parse_ms;
            create_at_100 = insert_ms;
            total_at_100 = total;
            batched_at_100 = batched;
        }
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(create_at_100 < parse_at_100,
                 "graph creation cheaper than XML parsing at 100 services");
    // Insert now maintains exact reachability closures per vertex (the
    // churn-proofing trade) — still far below parse, but no longer under
    // half of it on every run.
    checks.check(create_at_100 < 0.6 * parse_at_100,
                 "graph creation well under the parse cost (paper: negligible)");
    checks.check(total_at_100 > 4.0 * total_at_10,
                 "total grows roughly linearly with the number of services");
    checks.check(batched_at_100 < 1.25 * total_at_100,
                 "one-shot batched ingest no slower than per-publish "
                 "(handover takes the bulk path)");
    std::printf("\n");
    return checks.finish("fig7_graph_creation");
}
