// Google-benchmark microbenchmarks of the discovery fast-path kernels:
// interval-code subsumption/distance, capability matching, DAG queries,
// Bloom operations, and the XML parse that dominates publish cost.
// Complements the figure benches with per-operation numbers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "alloc_probe.hpp"
#include "bench_util.hpp"
#include "bloom/bloom_filter.hpp"
#include "description/conversation.hpp"
#include "directory/flat_directory.hpp"
#include "directory/semantic_directory.hpp"
#include "encoding/interval.hpp"
#include "matching/match.hpp"
#include "matching/oracles.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"
#include "xml/parser.hpp"

namespace {

using namespace sariadne;

struct Fixture {
    Fixture() : workload(make_universe()) {
        for (const auto& o : workload.ontologies()) kb.register_ontology(o);
        for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
            (void)kb.code_table(i);
        }
    }

    static std::vector<onto::Ontology> make_universe() {
        workload::OntologyGenConfig config;
        config.class_count = 30;
        return workload::generate_universe(22, config, 2006);
    }

    encoding::KnowledgeBase kb;
    workload::ServiceWorkload workload;
};

Fixture& fixture() {
    static Fixture instance;
    return instance;
}

void BM_EncodedSubsumption(benchmark::State& state) {
    auto& f = fixture();
    const auto& table = f.kb.code_table(0);
    const auto n = static_cast<onto::ConceptId>(table.class_count());
    onto::ConceptId a = 0;
    onto::ConceptId b = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.subsumes(a, b));
        a = (a + 1) % n;
        b = (b + 7) % n;
    }
}
BENCHMARK(BM_EncodedSubsumption);

void BM_EncodedDistance(benchmark::State& state) {
    auto& f = fixture();
    const auto& table = f.kb.code_table(0);
    const auto n = static_cast<onto::ConceptId>(table.class_count());
    onto::ConceptId a = 0;
    onto::ConceptId b = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.distance(a, b));
        a = (a + 1) % n;
        b = (b + 7) % n;
    }
}
BENCHMARK(BM_EncodedDistance);

void BM_TaxonomyDistance(benchmark::State& state) {
    auto& f = fixture();
    const auto& taxonomy = f.kb.taxonomy(0);
    const auto n = static_cast<onto::ConceptId>(taxonomy.class_count());
    onto::ConceptId a = 0;
    onto::ConceptId b = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(taxonomy.distance(a, b));
        a = (a + 1) % n;
        b = (b + 7) % n;
    }
}
BENCHMARK(BM_TaxonomyDistance);

void BM_CapabilityMatch(benchmark::State& state) {
    // Oracle path: no CodeSignatures attached, so match_capability walks
    // the virtual per-pair DistanceOracle interface.
    auto& f = fixture();
    matching::EncodedOracle oracle(f.kb);
    const auto provided = desc::resolve_capability(
        f.workload.service(0).profile.capabilities.front(), f.kb.registry());
    const auto required = desc::resolve_capability(
        f.workload.matching_request(0).capabilities.front(), f.kb.registry());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            matching::match_capability(provided, required, oracle));
    }
}
BENCHMARK(BM_CapabilityMatch);

void BM_CapabilityMatchFastPath(benchmark::State& state) {
    // Same pair with fresh CodeSignatures: match_capability dispatches to
    // the batched flat-array kernel instead of the virtual oracle.
    auto& f = fixture();
    matching::EncodedOracle oracle(f.kb);
    auto provided = desc::resolve_capability(
        f.workload.service(0).profile.capabilities.front(), f.kb.registry());
    auto required = desc::resolve_capability(
        f.workload.matching_request(0).capabilities.front(), f.kb.registry());
    desc::attach_code_signature(provided, f.kb);
    desc::attach_code_signature(required, f.kb);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            matching::match_capability(provided, required, oracle));
    }
}
BENCHMARK(BM_CapabilityMatchFastPath);

void BM_DirectoryQuery(benchmark::State& state) {
    auto& f = fixture();
    directory::SemanticDirectory directory(f.kb);
    const auto services = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < services; ++i) {
        directory.publish(f.workload.service(i));
    }
    // Resolve through the KnowledgeBase so the request carries fresh
    // CodeSignatures, as a resolve-once client would.
    const auto resolved =
        desc::resolve_request(f.workload.matching_request(3), f.kb);
    for (auto _ : state) {
        benchmark::DoNotOptimize(directory.query_resolved(resolved));
    }
    state.counters["services"] = static_cast<double>(services);
}
BENCHMARK(BM_DirectoryQuery)->Arg(10)->Arg(100)->Arg(500);

void BM_FlatQuery(benchmark::State& state) {
    auto& f = fixture();
    directory::FlatDirectory directory(f.kb);
    const auto services = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < services; ++i) {
        directory.publish(f.workload.service(i));
    }
    const auto resolved =
        desc::resolve_request(f.workload.matching_request(3), f.kb);
    for (auto _ : state) {
        directory::MatchStats stats;
        directory::QueryTiming timing;
        benchmark::DoNotOptimize(directory.query(resolved, stats, timing));
    }
}
BENCHMARK(BM_FlatQuery)->Arg(10)->Arg(100)->Arg(500);

void BM_ServiceXmlParse(benchmark::State& state) {
    auto& f = fixture();
    const std::string xml = f.workload.service_xml(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(xml::parse(xml));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ServiceXmlParse);

void BM_PublishClassify(benchmark::State& state) {
    auto& f = fixture();
    for (auto _ : state) {
        state.PauseTiming();
        directory::SemanticDirectory directory(f.kb);
        for (std::size_t i = 0; i < 50; ++i) {
            directory.publish(f.workload.service(i));
        }
        const auto service = f.workload.service(60);
        state.ResumeTiming();
        benchmark::DoNotOptimize(directory.publish(service));
    }
}
BENCHMARK(BM_PublishClassify);

void BM_ConversationContainment(benchmark::State& state) {
    using desc::Process;
    const Process provider = Process::sequence(
        {Process::atomic("login"),
         Process::repeat(Process::choice(
             {Process::atomic("browse"), Process::atomic("addItem"),
              Process::atomic("removeItem")})),
         Process::choice(
             {Process::atomic("checkout"), Process::atomic("cancel")})});
    const Process client = Process::sequence(
        {Process::atomic("login"), Process::atomic("browse"),
         Process::atomic("addItem"), Process::atomic("checkout")});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            desc::conversation_compatible(client, provider));
    }
}
BENCHMARK(BM_ConversationContainment);

void BM_BloomInsertAndProbe(benchmark::State& state) {
    bloom::BloomFilter filter;
    const std::vector<std::string> uris{"http://onto/a", "http://onto/b"};
    for (auto _ : state) {
        filter.insert_ontology_set(uris);
        benchmark::DoNotOptimize(filter.possibly_covers(uris));
    }
}
BENCHMARK(BM_BloomInsertAndProbe);

/// Consolidated matching-kernel report: ops/sec + p50/p99 per-op latency
/// for the distance kernel, the raw interval-merge kernels, all three
/// match_capability entry points and a 500-service directory query (both
/// the allocating and the buffer-reusing API, sampled interleaved so they
/// share scheduler/cache conditions), upserted into BENCH_matching.json
/// (shared with fig9). Returns the zero-allocation gate's exit code:
/// nonzero when a warmed-up reuse-API query touched the heap or reported a
/// nonzero MatchStats::scratch_allocs.
int write_matching_report(const std::string& path) {
    auto& f = fixture();
    const auto& table = f.kb.code_table(0);
    const auto n = static_cast<onto::ConceptId>(table.class_count());

    onto::ConceptId a = 0;
    onto::ConceptId b = 1;
    const auto distance_stats = bench::sample_kernel(2000, 512, [&] {
        benchmark::DoNotOptimize(table.distance(a, b));
        a = (a + 1) % n;
        b = (b + 7) % n;
    });
    bench::upsert_bench_json(path, "kernel.encoded_distance", distance_stats);

    auto provided = desc::resolve_capability(
        f.workload.service(0).profile.capabilities.front(), f.kb.registry());
    auto required = desc::resolve_capability(
        f.workload.matching_request(0).capabilities.front(), f.kb.registry());
    matching::EncodedOracle oracle(f.kb);
    const auto slow_stats = bench::sample_kernel(2000, 256, [&] {
        benchmark::DoNotOptimize(
            matching::match_capability(provided, required, oracle));
    });
    bench::upsert_bench_json(path, "kernel.capability_match_oracle_path",
                             slow_stats);

    desc::attach_code_signature(provided, f.kb);
    desc::attach_code_signature(required, f.kb);
    const auto fast_stats = bench::sample_kernel(2000, 256, [&] {
        benchmark::DoNotOptimize(
            matching::match_capability(provided, required, oracle));
    });
    bench::upsert_bench_json(path, "kernel.capability_match_fast_path",
                             fast_stats);

    // The prechecked kernel the DAG walk dispatches to once it has proven
    // the freshness guard for a whole query — match_capability minus the
    // two tag compares and the virtual-call fallback branch.
    const auto encoded_stats = bench::sample_kernel(2000, 256, [&] {
        benchmark::DoNotOptimize(
            matching::match_capability_encoded(provided, required, oracle));
    });
    bench::upsert_bench_json(path, "kernel.capability_match_encoded",
                             encoded_stats);

    // The innermost two-pointer merges over contiguous interval spans —
    // the vectorizable core every capability match reduces to.
    bench::LatencyStats merge_stats;
    const desc::CodeSignature& ps = provided.signature;
    const desc::CodeSignature& rs = required.signature;
    if (!ps.inputs.empty() && !rs.inputs.empty()) {
        const desc::CodedConceptSpan& outer_span = ps.inputs.front();
        const desc::CodedConceptSpan& inner_span = rs.inputs.front();
        const encoding::CodedInterval* outer =
            ps.intervals.data() + outer_span.begin;
        const encoding::CodedInterval* inner =
            rs.intervals.data() + inner_span.begin;
        merge_stats = bench::sample_kernel(2000, 1024, [&] {
            benchmark::DoNotOptimize(encoding::packed_contains(
                outer, outer_span.count, inner, inner_span.count));
            benchmark::DoNotOptimize(encoding::packed_distance(
                outer, outer_span.count, inner, inner_span.count));
        });
        bench::upsert_bench_json(path, "kernel.interval_merge", merge_stats);
    }

    // Skewed-list skip phases: a few late outer occurrences against a
    // dense inner list, so the merge is one long ++j run — the case the
    // galloped dispatch exists for. No containment by construction, so
    // both kernels traverse their full skip distance. Linear baseline and
    // dispatching entry point sampled in alternating batches so they share
    // scheduler and cache conditions.
    std::vector<encoding::CodedInterval> sparse_outer;
    for (int k = 0; k < 4; ++k) {
        encoding::CodedInterval ci;
        ci.interval.lo = 0.95 + 0.01 * k;
        ci.interval.hi = ci.interval.lo + 0.001;
        ci.depth = 1;
        sparse_outer.push_back(ci);
    }
    std::vector<encoding::CodedInterval> dense_inner;
    for (int k = 0; k < 2048; ++k) {
        encoding::CodedInterval ci;
        ci.interval.lo = static_cast<double>(k) * (0.9 / 2048.0);
        ci.interval.hi = ci.interval.lo + 1e-5;
        ci.depth = 5;
        dense_inner.push_back(ci);
    }
    const bool skew_linear_verdict = encoding::packed_contains_linear(
        sparse_outer.data(), sparse_outer.size(), dense_inner.data(),
        dense_inner.size());
    const bool skew_dispatch_verdict = encoding::packed_contains(
        sparse_outer.data(), sparse_outer.size(), dense_inner.data(),
        dense_inner.size());
    std::vector<double> skew_linear_us;
    std::vector<double> skew_galloped_us;
    for (int s = 0; s < 1200; ++s) {
        {
            Stopwatch stopwatch;
            for (int i = 0; i < 64; ++i) {
                benchmark::DoNotOptimize(encoding::packed_contains_linear(
                    sparse_outer.data(), sparse_outer.size(),
                    dense_inner.data(), dense_inner.size()));
                benchmark::DoNotOptimize(encoding::packed_distance_linear(
                    sparse_outer.data(), sparse_outer.size(),
                    dense_inner.data(), dense_inner.size()));
            }
            skew_linear_us.push_back(stopwatch.elapsed_ms() * 1000.0 / 64);
        }
        {
            Stopwatch stopwatch;
            for (int i = 0; i < 64; ++i) {
                benchmark::DoNotOptimize(encoding::packed_contains(
                    sparse_outer.data(), sparse_outer.size(),
                    dense_inner.data(), dense_inner.size()));
                benchmark::DoNotOptimize(encoding::packed_distance(
                    sparse_outer.data(), sparse_outer.size(),
                    dense_inner.data(), dense_inner.size()));
            }
            skew_galloped_us.push_back(stopwatch.elapsed_ms() * 1000.0 / 64);
        }
    }
    const auto skew_linear_stats = bench::summarize_us(skew_linear_us);
    const auto skew_galloped_stats = bench::summarize_us(skew_galloped_us);
    bench::upsert_bench_json(path, "kernel.interval_skip_linear",
                             skew_linear_stats);
    bench::upsert_bench_json(path, "kernel.interval_skip_galloped",
                             skew_galloped_stats);

    directory::SemanticDirectory directory(f.kb);
    for (std::size_t i = 0; i < 500; ++i) {
        directory.publish(f.workload.service(i));
    }
    const auto resolved =
        desc::resolve_request(f.workload.matching_request(3), f.kb);

    // Interleaved A/B: the allocating API (fresh QueryResult per call)
    // against the reuse API (one QueryResult across the run), alternating
    // batches so both see the same scheduler and cache conditions.
    directory::QueryResult reused;
    std::vector<double> alloc_us;
    std::vector<double> reuse_us;
    for (int s = 0; s < 1500; ++s) {
        {
            Stopwatch stopwatch;
            for (int i = 0; i < 8; ++i) {
                benchmark::DoNotOptimize(directory.query_resolved(resolved));
            }
            alloc_us.push_back(stopwatch.elapsed_ms() * 1000.0 / 8);
        }
        {
            Stopwatch stopwatch;
            for (int i = 0; i < 8; ++i) {
                directory.query_resolved(resolved, {}, reused);
                benchmark::DoNotOptimize(reused.stats.capability_matches);
            }
            reuse_us.push_back(stopwatch.elapsed_ms() * 1000.0 / 8);
        }
    }
    const auto query_stats = bench::summarize_us(alloc_us);
    const auto reuse_stats = bench::summarize_us(reuse_us);
    bench::upsert_bench_json(path, "directory.semantic_query_500",
                             query_stats);
    bench::upsert_bench_json(path, "directory.semantic_query_500_reuse",
                             reuse_stats);

    // Zero-allocation gate: once the arena chunks and the result buffers
    // are warm, a reuse-API query must perform no heap allocation at all —
    // observed from outside via the global operator-new probe and from
    // inside via MatchStats::scratch_allocs. Warm over several request
    // shapes so string/vector capacities converge before measuring.
    std::vector<std::vector<desc::ResolvedCapability>> gate_requests;
    for (std::size_t r = 0; r < 8; ++r) {
        gate_requests.push_back(
            desc::resolve_request(f.workload.matching_request(r * 13), f.kb));
    }
    for (int warm = 0; warm < 4; ++warm) {
        for (const auto& request : gate_requests) {
            directory.query_resolved(request, {}, reused);
        }
    }
    constexpr int kGateRounds = 32;
    std::uint64_t scratch_allocs = 0;
    const std::uint64_t heap_before = bench_alloc::allocations();
    for (int round = 0; round < kGateRounds; ++round) {
        for (const auto& request : gate_requests) {
            directory.query_resolved(request, {}, reused);
            scratch_allocs += reused.stats.scratch_allocs;
        }
    }
    const std::uint64_t heap_allocs =
        bench_alloc::allocations() - heap_before;
    const std::uint64_t gate_queries =
        static_cast<std::uint64_t>(kGateRounds) * gate_requests.size();
    char allocs_json[128];
    std::snprintf(allocs_json, sizeof(allocs_json),
                  "{\"queries\": %llu, \"heap_allocs\": %llu, "
                  "\"scratch_allocs\": %llu}",
                  static_cast<unsigned long long>(gate_queries),
                  static_cast<unsigned long long>(heap_allocs),
                  static_cast<unsigned long long>(scratch_allocs));
    bench::upsert_bench_json(path, "directory.query_allocs_steady_state",
                             allocs_json);

    std::printf("\nBENCH_matching.json updated (%s):\n", path.c_str());
    std::printf("  kernel.encoded_distance            %s\n",
                bench::to_json(distance_stats).c_str());
    std::printf("  kernel.interval_merge              %s\n",
                bench::to_json(merge_stats).c_str());
    std::printf("  kernel.capability_match_oracle     %s\n",
                bench::to_json(slow_stats).c_str());
    std::printf("  kernel.capability_match_fast_path  %s\n",
                bench::to_json(fast_stats).c_str());
    std::printf("  kernel.capability_match_encoded    %s\n",
                bench::to_json(encoded_stats).c_str());
    std::printf("  kernel.interval_skip_linear        %s\n",
                bench::to_json(skew_linear_stats).c_str());
    std::printf("  kernel.interval_skip_galloped      %s\n",
                bench::to_json(skew_galloped_stats).c_str());
    std::printf("  directory.semantic_query_500       %s\n",
                bench::to_json(query_stats).c_str());
    std::printf("  directory.semantic_query_500_reuse %s\n",
                bench::to_json(reuse_stats).c_str());
    std::printf("  directory.query_allocs_steady_state %s\n", allocs_json);

    bench::ShapeChecks checks;
    checks.check(heap_allocs == 0,
                 "steady-state reuse-API queries perform zero heap "
                 "allocations");
    checks.check(scratch_allocs == 0,
                 "steady-state queries report zero arena chunk growth "
                 "(MatchStats::scratch_allocs)");
    checks.check(skew_linear_verdict == skew_dispatch_verdict &&
                     !skew_dispatch_verdict,
                 "galloped dispatch agrees with the linear kernel on the "
                 "skewed no-containment lists");
    checks.check(encoding::gallop_worthwhile(sparse_outer.size(),
                                             dense_inner.size()),
                 "the skewed shape (4 vs 2048) clears the galloping "
                 "dispatch gate");
    checks.check(skew_galloped_stats.p50_us <= skew_linear_stats.p50_us,
                 "galloped skip phases are no slower than the linear "
                 "merge on 4-vs-2048 skew (p50)");
    return checks.finish("micro_kernels");
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return write_matching_report("BENCH_matching.json");
}
