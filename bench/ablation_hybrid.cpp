// Ablation A8 — hybrid (ad hoc + infrastructure) vs pure ad-hoc networks.
//
// The paper positions S-Ariadne for "hybrid wireless networks combining ad
// hoc and infrastructure-based networking". This bench runs the same
// workload over (a) a pure random-geometric MANET and (b) a hybrid network
// with mains-powered access points wired into a cheap backbone, comparing
// mean discovery response time and where the directory backbone lands.
#include <cstdio>
#include <vector>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "bench_util.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

struct RunResult {
    double mean_response_ms = -1;
    double satisfaction = 0;
    std::size_t directories = 0;
    std::size_t directories_on_infrastructure = 0;
};

RunResult run(net::Topology topology, workload::ServiceWorkload& workload,
              encoding::KnowledgeBase& kb) {
    ariadne::ProtocolConfig config;
    config.adv_period_ms = 1000;
    config.adv_timeout_ms = 3000;
    config.vicinity_hops = 2;

    ariadne::DiscoveryNetwork network(std::move(topology), config, kb);
    const std::size_t nodes = sim(network).topology().node_count();
    network.start();
    network.run_for(15000);

    for (std::size_t i = 0; i < 24; ++i) {
        network.publish_service(static_cast<net::NodeId>((i * 7) % nodes),
                                workload.service_xml(i));
    }
    network.run_for(10000);

    std::vector<std::uint64_t> ids;
    for (std::size_t r = 0; r < 20; ++r) {
        ids.push_back(network.discover(
            static_cast<net::NodeId>((r * 11 + 3) % nodes),
            workload.matching_request_xml((r * 3) % 24)));
    }
    network.run_for(60000);

    RunResult result;
    for (const auto dir : network.directories()) {
        ++result.directories;
        if (sim(network).topology().is_infrastructure(dir)) {
            ++result.directories_on_infrastructure;
        }
    }
    double total = 0;
    int answered = 0;
    int satisfied = 0;
    for (const auto id : ids) {
        const auto& outcome = network.outcome(id);
        if (!outcome.answered) continue;
        ++answered;
        total += outcome.response_time_ms();
        if (outcome.satisfied) ++satisfied;
    }
    if (answered > 0) result.mean_response_ms = total / answered;
    result.satisfaction = static_cast<double>(satisfied) / ids.size();
    return result;
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation A8: pure ad hoc vs hybrid (access-point backbone)",
        "the wired backbone shortens discovery paths and the election "
        "lands the directories on mains-powered infrastructure");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    Rng rng_manet(21);
    Rng rng_hybrid(21);
    const RunResult manet =
        run(net::Topology::random_geometric(40, 0.22, rng_manet), workload, kb);
    const RunResult hybrid =
        run(net::Topology::hybrid(36, 4, 0.22, rng_hybrid), workload, kb);

    std::printf("\n%10s %14s %12s %14s %14s\n", "network", "response_ms",
                "satisfied", "directories", "on infra");
    std::printf("%10s %14.2f %11.0f%% %14zu %14zu\n", "ad hoc",
                manet.mean_response_ms, 100 * manet.satisfaction,
                manet.directories, manet.directories_on_infrastructure);
    std::printf("%10s %14.2f %11.0f%% %14zu %14zu\n", "hybrid",
                hybrid.mean_response_ms, 100 * hybrid.satisfaction,
                hybrid.directories, hybrid.directories_on_infrastructure);

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(hybrid.satisfaction >= 0.9 && manet.satisfaction >= 0.9,
                 "both networks satisfy >=90% of matching requests");
    checks.check(hybrid.directories_on_infrastructure == hybrid.directories,
                 "in the hybrid network every directory is an access point");
    checks.check(hybrid.mean_response_ms <= manet.mean_response_ms * 1.2,
                 "the hybrid backbone does not slow discovery down "
                 "(typically it shortens it)");
    std::printf("\n");
    return checks.finish("ablation_hybrid");
}
