// Figure 8 — "Time to publish a service advertisement".
//
// A directory already caching N services receives one more advertisement.
// The paper plots parse time, insertion (classification into the DAGs)
// and total for N = 1..100, finding insertion (a) negligible next to
// parsing and (b) nearly constant in N — because the ontology index
// preselects candidate DAGs, the number of semantic matches performed for
// an insertion does not depend on directory size.
#include <cstdio>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Figure 8: time to publish one new service advertisement",
        "insertion is negligible vs parsing and nearly constant in the "
        "number of already-cached services");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));

    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%8s %12s %12s %12s %14s %18s\n", "cached", "parse_ms",
                "insert_ms", "total_ms", "batch_ms/svc", "matches_performed");

    double insert_at_10 = 0;
    double insert_at_100 = 0;
    double parse_at_100 = 0;
    double batch_at_100 = 0;
    for (std::size_t cached = 10; cached <= 100; cached += 10) {
        // The cache itself is loaded through the bulk path — one
        // publish_batch per directory, timed to give the amortized
        // per-service ingest cost next to the one-at-a-time figures.
        directory::SemanticDirectory directory(kb);
        std::vector<desc::ServiceDescription> warm;
        warm.reserve(cached);
        for (std::size_t i = 0; i < cached; ++i) {
            warm.push_back(workload.service(i));
        }
        Stopwatch batch_watch;
        directory.publish_batch(std::move(warm));
        const double batch_ms_per_service =
            batch_watch.elapsed_ms() / static_cast<double>(cached);

        // Publish (and withdraw) fresh services repeatedly; median timing.
        double parse_ms = 0;
        double insert_ms = 0;
        std::uint64_t matches = 0;
        std::vector<double> inserts;
        std::vector<double> parses;
        for (int rep = 0; rep < 9; ++rep) {
            const std::size_t fresh = 100 + (cached + static_cast<std::size_t>(rep)) % 60;
            const std::string xml = workload.service_xml(fresh);
            const auto before = directory.lifetime_stats().capability_matches;
            const auto [id, timing] = directory.publish_xml(xml);
            matches += directory.lifetime_stats().capability_matches - before;
            parses.push_back(timing.parse_ms);
            inserts.push_back(timing.insert_ms);
            directory.remove(id);
        }
        std::sort(parses.begin(), parses.end());
        std::sort(inserts.begin(), inserts.end());
        parse_ms = parses[parses.size() / 2];
        insert_ms = inserts[inserts.size() / 2];

        std::printf("%8zu %12.3f %12.3f %12.3f %14.3f %18.1f\n", cached,
                    parse_ms, insert_ms, parse_ms + insert_ms,
                    batch_ms_per_service, static_cast<double>(matches) / 9.0);
        if (cached == 10) insert_at_10 = insert_ms;
        if (cached == 100) {
            insert_at_100 = insert_ms;
            parse_at_100 = parse_ms;
            batch_at_100 = batch_ms_per_service;
        }
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(insert_at_100 < parse_at_100,
                 "insertion cheaper than parsing at 100 cached services");
    checks.check(insert_at_100 < 4.0 * insert_at_10 + 0.05,
                 "insertion time nearly constant in directory size");
    checks.check(batch_at_100 < 4.0 * (insert_at_100 + 0.05),
                 "bulk-loading the cache costs no more per service than "
                 "publishing one service into the warm directory");
    std::printf("\n");
    return checks.finish("fig8_publish");
}
