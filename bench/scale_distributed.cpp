// Ablation A4 — distributed scale-out (the paper's "S-Ariadne is more
// scalable" claim, §5/§6).
//
// Full-protocol runs over the simulator: networks of growing size with an
// elected directory backbone, the §5 workload published across it, and a
// batch of discoveries issued from random nodes. Reported per network
// size and protocol: mean end-to-end response time (virtual ms, including
// real directory compute charged as service time), satisfaction rate, and
// forwarded-request traffic — where Ariadne floods every directory and
// S-Ariadne consults its Bloom summaries.
#include <cstdio>
#include <vector>

#include "ariadne/protocol.hpp"
#include "net/topology.hpp"
#include "bench_util.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

namespace {

struct RunResult {
    double mean_response_ms = 0;
    double satisfaction = 0;
    double forwards_per_request = 0;
    std::size_t directories = 0;
};

RunResult run(ariadne::Protocol protocol, std::size_t nodes,
              workload::ServiceWorkload& workload, encoding::KnowledgeBase& kb,
              obs::MetricsRegistry* metrics = nullptr) {
    ariadne::ProtocolConfig config;
    config.protocol = protocol;
    config.adv_period_ms = 1000;
    config.adv_timeout_ms = 3000;
    config.vicinity_hops = 2;

    Rng rng(nodes * 31 + 7);
    ariadne::DiscoveryNetwork network(
        net::Topology::random_geometric(nodes, 0.35, rng), config, kb, metrics);
    network.start();
    network.run_for(15000);

    const std::size_t services = nodes;  // density held constant
    for (std::size_t i = 0; i < services; ++i) {
        const auto provider = static_cast<net::NodeId>((i * 13) % nodes);
        if (protocol == ariadne::Protocol::kSAriadne) {
            network.publish_service(provider, workload.service_xml(i));
        } else {
            network.publish_service(provider, workload.wsdl_xml(i));
        }
    }
    network.run_for(10000);

    const auto forwards_before = network.traffic().per_type.count("fwd")
                                     ? network.traffic().per_type.at("fwd")
                                     : 0;
    std::vector<std::uint64_t> ids;
    for (std::size_t r = 0; r < 20; ++r) {
        const auto client = static_cast<net::NodeId>((r * 17 + 3) % nodes);
        const std::size_t target = (r * 5) % services;
        ids.push_back(network.discover(
            client, protocol == ariadne::Protocol::kSAriadne
                        ? workload.matching_request_xml(target)
                        : workload.wsdl_request_xml(target)));
    }
    network.run_for(60000);

    RunResult result;
    result.directories = network.directories().size();
    const auto forwards_after = network.traffic().per_type.count("fwd")
                                    ? network.traffic().per_type.at("fwd")
                                    : 0;
    result.forwards_per_request =
        static_cast<double>(forwards_after - forwards_before) /
        static_cast<double>(ids.size());
    double total_response = 0;
    int answered = 0;
    int satisfied = 0;
    for (const auto id : ids) {
        const auto& outcome = network.outcome(id);
        if (outcome.answered) {
            ++answered;
            total_response += outcome.response_time_ms();
            if (outcome.satisfied) ++satisfied;
        }
    }
    result.mean_response_ms = answered > 0 ? total_response / answered : -1;
    result.satisfaction =
        static_cast<double>(satisfied) / static_cast<double>(ids.size());
    return result;
}

}  // namespace

int main() {
    bench::print_header(
        "Ablation A4: distributed scale-out, Ariadne vs S-Ariadne backbones",
        "S-Ariadne scales better: selective Bloom forwarding keeps "
        "per-request backbone traffic low as the network grows");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%7s %11s | %12s %10s %10s | %12s %10s %10s\n", "nodes",
                "protocol", "response_ms", "satisfied", "fwd/req", "", "", "");
    double sa_fwd_large = 0;
    double ar_fwd_large = 0;
    double sa_sat_min = 1.0;
    obs::MetricsRegistry metrics;  // snapshot of the largest S-Ariadne run
    for (const std::size_t nodes : {16ul, 36ul, 64ul}) {
        const RunResult ariadne_run =
            run(ariadne::Protocol::kAriadne, nodes, workload, kb);
        const RunResult sariadne_run =
            run(ariadne::Protocol::kSAriadne, nodes, workload, kb,
                nodes == 64 ? &metrics : nullptr);
        std::printf("%7zu %11s | %12.2f %9.0f%% %10.2f | (%zu directories)\n",
                    nodes, "Ariadne", ariadne_run.mean_response_ms,
                    100 * ariadne_run.satisfaction,
                    ariadne_run.forwards_per_request, ariadne_run.directories);
        std::printf("%7s %11s | %12.2f %9.0f%% %10.2f | (%zu directories)\n",
                    "", "S-Ariadne", sariadne_run.mean_response_ms,
                    100 * sariadne_run.satisfaction,
                    sariadne_run.forwards_per_request, sariadne_run.directories);
        if (nodes == 64) {
            sa_fwd_large = sariadne_run.forwards_per_request;
            ar_fwd_large = ariadne_run.forwards_per_request;
        }
        sa_sat_min = std::min(sa_sat_min, sariadne_run.satisfaction);
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(sa_sat_min >= 0.9,
                 "S-Ariadne satisfies >=90% of matching requests at every "
                 "network size");
    checks.check(sa_fwd_large <= ar_fwd_large,
                 "at 64 nodes, Bloom forwarding sends no more forwards than "
                 "flooding");
    bench::emit_metrics(metrics, "scale_distributed_64_sariadne");
    std::printf("\n");
    return checks.finish("scale_distributed");
}
