// Figure 10 — "Ariadne vs S-Ariadne".
//
// Directory-local response time per request as the number of cached
// services grows. Ariadne keeps WSDL documents and answers a request by
// re-parsing every stored description and comparing signatures
// syntactically — response time grows linearly. S-Ariadne parsed and
// classified everything at publish time and matches by numeric code
// comparison over DAG roots — response time stays almost flat. The
// request-side XML parse is included for both (it is part of the response
// path); the paper's measured crossover puts S-Ariadne below Ariadne well
// before 100 services.
#include <cstdio>

#include "bench_util.hpp"
#include "directory/semantic_directory.hpp"
#include "directory/syntactic_directory.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    bench::print_header(
        "Figure 10: response time, syntactic Ariadne vs semantic S-Ariadne",
        "Ariadne grows linearly with directory size; S-Ariadne stays "
        "almost constant and below it");

    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(22, onto_config, 2006));

    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);
    for (onto::OntologyIndex i = 0; i < kb.registry().size(); ++i) {
        (void)kb.code_table(i);
    }

    std::printf("\n%8s %14s %16s\n", "services", "ariadne_ms", "s_ariadne_ms");

    constexpr int kRequestsPerPoint = 10;
    double ariadne_at_10 = 0;
    double ariadne_at_100 = 0;
    double sariadne_at_10 = 0;
    double sariadne_at_100 = 0;

    for (std::size_t count = 10; count <= 100; count += 10) {
        directory::SyntacticDirectory ariadne;
        directory::SemanticDirectory sariadne(kb);
        for (std::size_t i = 0; i < count; ++i) {
            ariadne.publish_xml(workload.wsdl_xml(i));
            sariadne.publish(workload.service(i));
        }

        std::vector<std::string> wsdl_requests;
        std::vector<std::string> semantic_requests;
        for (int r = 0; r < kRequestsPerPoint; ++r) {
            const std::size_t target = (static_cast<std::size_t>(r) * 7) % count;
            wsdl_requests.push_back(workload.wsdl_request_xml(target));
            semantic_requests.push_back(workload.matching_request_xml(target));
        }

        const double ariadne_ms = bench::median_ms(5, [&] {
            for (const auto& request : wsdl_requests) {
                directory::QueryTiming timing;
                const auto hits = ariadne.query_xml(request, timing);
                if (hits.empty()) {
                    std::fprintf(stderr, "ariadne missed its own twin!\n");
                    std::exit(1);
                }
            }
        }) / kRequestsPerPoint;

        const double sariadne_ms = bench::median_ms(5, [&] {
            for (const auto& request : semantic_requests) {
                const auto result = sariadne.query_xml(request);
                if (!result.fully_satisfied()) {
                    std::fprintf(stderr, "s-ariadne missed a matching request!\n");
                    std::exit(1);
                }
            }
        }) / kRequestsPerPoint;

        std::printf("%8zu %14.4f %16.4f\n", count, ariadne_ms, sariadne_ms);
        if (count == 10) {
            ariadne_at_10 = ariadne_ms;
            sariadne_at_10 = sariadne_ms;
        }
        if (count == 100) {
            ariadne_at_100 = ariadne_ms;
            sariadne_at_100 = sariadne_ms;
        }
    }

    std::printf("\n");
    bench::ShapeChecks checks;
    checks.check(ariadne_at_100 > 4.0 * ariadne_at_10,
                 "Ariadne response time grows roughly linearly (10x services "
                 "=> >4x time)");
    checks.check(sariadne_at_100 < 3.0 * sariadne_at_10 + 0.05,
                 "S-Ariadne response time almost stable across directory sizes");
    checks.check(sariadne_at_100 < ariadne_at_100,
                 "S-Ariadne beats Ariadne at 100 services");
    std::printf("\n");
    return checks.finish("fig10_ariadne_vs_sariadne");
}
