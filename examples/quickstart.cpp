// Quickstart: the three-verb API in ~60 lines.
//
//   1. register ontologies      (classification + encoding happen offline)
//   2. publish a service        (parsed once, classified into capability DAGs)
//   3. discover by capability   (numeric code matching, ranked by distance)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/discovery_engine.hpp"

int main() {
    sariadne::DiscoveryEngine engine;

    // 1. An ontology of printing devices, as an XML document.
    engine.register_ontology_xml(R"(
      <ontology uri="http://home.example/devices" version="1">
        <class name="Device"/>
        <class name="Printer"><subClassOf name="Device"/></class>
        <class name="ColorPrinter"><subClassOf name="Printer"/></class>
        <class name="Document"/>
        <class name="PdfDocument"><subClassOf name="Document"/></class>
        <class name="PrintJob"/>
      </ontology>)");

    // 2. A networked printer advertises its capability: it accepts *any*
    //    Document and produces a PrintJob.
    engine.publish(R"(
      <service name="HallwayPrinter" provider="acme" middleware="UPnP">
        <grounding protocol="SOAP" address="http://printer.local/print"/>
        <capability name="PrintDocument" kind="provided">
          <category concept="http://home.example/devices#Printer"/>
          <input name="doc" concept="http://home.example/devices#Document"/>
          <output name="job" concept="http://home.example/devices#PrintJob"/>
        </capability>
      </service>)");

    // 3. A client wants to print a *PDF*. There is no syntactic agreement —
    //    the request says PdfDocument, the advertisement says Document —
    //    but Document subsumes PdfDocument, so semantic matching bridges
    //    the gap (a WSDL string comparison would simply fail).
    const auto results = engine.discover(R"(
      <request requester="laptop-17">
        <capability name="NeedPrinting">
          <category concept="http://home.example/devices#Printer"/>
          <input name="doc" concept="http://home.example/devices#PdfDocument"/>
          <output name="job" concept="http://home.example/devices#PrintJob"/>
        </capability>
      </request>)");

    for (const auto& row : results) {
        if (row.empty()) {
            std::printf("no provider found\n");
            continue;
        }
        for (const auto& hit : row) {
            std::printf("matched: %s / %s  (semantic distance %d)  invoke at %s\n",
                        hit.service_name.c_str(), hit.capability_name.c_str(),
                        hit.semantic_distance, hit.grounding.address.c_str());
        }
    }
    return results.empty() || results[0].empty() ? 1 : 0;
}
