// The paper's Figure 1 scenario, end to end.
//
// A pervasive home: a workstation provides two dependent capabilities —
// SendDigitalStream (category DigitalServer, streams any DigitalResource)
// and ProvideGame (category GameServer, streams GameResources) — and a
// PDA requests GetVideoStream (category VideoServer, offering a
// VideoResource title, expecting a Stream).
//
// The run shows exactly what the paper describes:
//   * Match(SendDigitalStream, GetVideoStream) holds at distance 3,
//   * ProvideGame does not match the video request,
//   * a dedicated video server, once it appears, wins the ranking,
//   * withdrawal falls discovery back to the generic capability.
#include <cstdio>

#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"

namespace {

constexpr const char* kMediaOntology = R"(
  <ontology uri="http://amigo.example/onto/media" version="1">
    <class name="Resource"/>
    <class name="DigitalResource"><subClassOf name="Resource"/></class>
    <class name="VideoResource"><subClassOf name="DigitalResource"/></class>
    <class name="SoundResource"><subClassOf name="DigitalResource"/>
      <disjointWith name="VideoResource"/></class>
    <class name="GameResource"><subClassOf name="DigitalResource"/></class>
    <class name="MovieResource"><subClassOf name="VideoResource"/></class>
    <class name="Stream"/>
    <class name="VideoStream"><subClassOf name="Stream"/></class>
    <class name="Title"/>
    <property name="hasTitle"><domain name="Resource"/><range name="Title"/></property>
  </ontology>)";

constexpr const char* kServerOntology = R"(
  <ontology uri="http://amigo.example/onto/server" version="1">
    <class name="Server"/>
    <class name="DigitalServer"><subClassOf name="Server"/></class>
    <class name="MediaServer"><subClassOf name="DigitalServer"/></class>
    <class name="VideoServer"><subClassOf name="MediaServer"/></class>
    <class name="GameServer"><subClassOf name="DigitalServer"/></class>
  </ontology>)";

constexpr const char* kWorkstation = R"(
  <service name="Workstation" provider="amigo-home" middleware="WS">
    <grounding protocol="SOAP" address="http://workstation.local/media"/>
    <capability name="SendDigitalStream" kind="provided">
      <category concept="http://amigo.example/onto/server#DigitalServer"/>
      <input name="resource" concept="http://amigo.example/onto/media#DigitalResource"/>
      <output name="stream" concept="http://amigo.example/onto/media#Stream"/>
      <includes name="ProvideGame"/>
    </capability>
    <capability name="ProvideGame" kind="provided">
      <category concept="http://amigo.example/onto/server#GameServer"/>
      <input name="game" concept="http://amigo.example/onto/media#GameResource"/>
      <output name="stream" concept="http://amigo.example/onto/media#Stream"/>
    </capability>
    <qos name="startupLatencyMs" value="120"/>
    <context name="location" value="livingRoom"/>
  </service>)";

constexpr const char* kVideoBox = R"(
  <service name="VideoBox" provider="acme" middleware="UPnP">
    <grounding protocol="SOAP" address="http://videobox.local/stream"/>
    <capability name="StreamVideo" kind="provided">
      <category concept="http://amigo.example/onto/server#VideoServer"/>
      <input name="movie" concept="http://amigo.example/onto/media#VideoResource"/>
      <output name="stream" concept="http://amigo.example/onto/media#Stream"/>
    </capability>
  </service>)";

constexpr const char* kPdaRequest = R"(
  <request requester="pda-7">
    <capability name="GetVideoStream">
      <category concept="http://amigo.example/onto/server#VideoServer"/>
      <input name="title" concept="http://amigo.example/onto/media#VideoResource"/>
      <output name="stream" concept="http://amigo.example/onto/media#Stream"/>
    </capability>
  </request>)";

void show(const char* moment,
          const std::vector<std::vector<sariadne::Discovery>>& results) {
    std::printf("%s\n", moment);
    for (const auto& row : results) {
        if (row.empty()) {
            std::printf("  (no capability matched)\n");
            continue;
        }
        for (const auto& hit : row) {
            std::printf("  -> %s / %s  distance=%d  at %s\n",
                        hit.service_name.c_str(), hit.capability_name.c_str(),
                        hit.semantic_distance, hit.grounding.address.c_str());
        }
    }
}

}  // namespace

int main() {
    sariadne::DiscoveryEngine engine;
    engine.register_ontology_xml(kMediaOntology);
    engine.register_ontology_xml(kServerOntology);

    std::printf("=== Figure 1: the pervasive media home ===\n\n");

    engine.publish(kWorkstation);
    show("PDA asks for GetVideoStream with only the workstation around\n"
         "(the paper's worked example: SendDigitalStream matches, distance 3):",
         engine.discover(kPdaRequest));

    const auto videobox_id = engine.publish(kVideoBox);
    show("\nA dedicated video server joins — ranking now prefers the exact "
         "fit (distance 0):",
         engine.discover(kPdaRequest));

    engine.withdraw(videobox_id);
    show("\nThe video server leaves — discovery degrades gracefully back "
         "to the generic capability:",
         engine.discover(kPdaRequest));

    // The game request shows capability-level dependency: it is served by
    // BOTH ProvideGame (exact) and SendDigitalStream (which includes it) —
    // the ranking picks the exact one.
    const auto game = engine.discover(R"(
      <request requester="pda-7">
        <capability name="PlayGame">
          <category concept="http://amigo.example/onto/server#GameServer"/>
          <input name="g" concept="http://amigo.example/onto/media#GameResource"/>
          <output name="s" concept="http://amigo.example/onto/media#Stream"/>
        </capability>
      </request>)");
    show("\nPDA asks to play a game — exact capability wins over the "
         "including one:",
         game);

    const auto& stats = engine.directory().lifetime_stats();
    std::printf("\ndirectory stats: %llu capability-level matches performed, "
                "%zu DAGs, %zu capabilities cached\n",
                static_cast<unsigned long long>(stats.capability_matches),
                engine.directory().dag_count(),
                engine.directory().capability_count());
    return 0;
}
