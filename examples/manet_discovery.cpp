// Distributed discovery over a simulated MANET (the paper's §4/§5 setting).
//
// 30 wireless nodes in a random geometric topology. No directory exists at
// t=0: the timeout-driven election deploys a backbone of directories, each
// advertising within its vicinity. Providers publish Amigo-S descriptions
// to their nearest directory; Bloom-filter summaries flow between
// directories; clients discover across the backbone with selective
// forwarding. The run prints the backbone, every discovery outcome with
// its end-to-end virtual response time, and the protocol traffic budget.
#include <cstdio>

#include "ariadne/protocol.hpp"
#include "net/sim_transport.hpp"
#include "net/mobility.hpp"
#include "workload/ontology_gen.hpp"
#include "workload/service_gen.hpp"

using namespace sariadne;

int main() {
    // Ontology universe and workload.
    workload::OntologyGenConfig onto_config;
    onto_config.class_count = 30;
    workload::ServiceWorkload workload(
        workload::generate_universe(8, onto_config, 42));
    encoding::KnowledgeBase kb;
    for (const auto& o : workload.ontologies()) kb.register_ontology(o);

    // Network: 30 nodes, radio range 0.28 in the unit square.
    Rng rng(7);
    ariadne::ProtocolConfig config;
    config.protocol = ariadne::Protocol::kSAriadne;
    config.adv_period_ms = 1000;
    config.adv_timeout_ms = 3000;
    config.vicinity_hops = 2;
    config.election_ttl = 2;

    config.republish_period_ms = 5000;
    config.request_timeout_ms = 4000;

    ariadne::DiscoveryNetwork network(
        net::Topology::random_geometric(30, 0.28, rng), config, kb);

    // Pedestrian-pace random-waypoint mobility: links genuinely rewire
    // while discovery runs.
    net::MobilityConfig motion;
    motion.speed = 0.02;
    motion.step_ms = 1000;
    motion.radio_range = 0.28;
    net::RandomWaypointMobility mobility(sim(network), motion);
    mobility.start();
    network.start();

    std::printf("=== t=0: 30 nodes, no directory ===\n");
    network.run_for(15000);

    const auto dirs = network.directories();
    std::printf("after 15 s: %zu directories elected:", dirs.size());
    for (const auto d : dirs) std::printf(" node-%u", d);
    std::printf("\n\n");

    // 16 providers publish services.
    for (std::size_t i = 0; i < 16; ++i) {
        network.publish_service(static_cast<net::NodeId>((i * 7) % 30),
                                workload.service_xml(i));
    }
    network.run_for(10000);
    std::printf("16 services published to the backbone\n\n");

    // 8 clients discover from scattered positions.
    std::vector<std::uint64_t> requests;
    for (std::size_t i = 0; i < 16; i += 2) {
        requests.push_back(
            network.discover(static_cast<net::NodeId>((i * 11 + 5) % 30),
                             workload.matching_request_xml(i)));
    }
    network.run_for(30000);

    std::printf("%-10s %-10s %-12s %-16s %-14s\n", "request", "answered",
                "satisfied", "response(ms)", "dirs asked");
    int satisfied = 0;
    for (const auto id : requests) {
        const auto& outcome = network.outcome(id);
        std::printf("#%-9llu %-10s %-12s %-16.2f %-14u\n",
                    static_cast<unsigned long long>(id),
                    outcome.answered ? "yes" : "NO",
                    outcome.satisfied ? "yes" : "no",
                    outcome.response_time_ms(), outcome.directories_asked);
        if (outcome.satisfied) ++satisfied;
    }

    const auto& traffic = network.traffic();
    std::printf("\nprotocol traffic: %llu unicasts, %llu broadcasts, "
                "%llu link transmissions, %llu bytes\n",
                static_cast<unsigned long long>(traffic.unicasts),
                static_cast<unsigned long long>(traffic.broadcasts),
                static_cast<unsigned long long>(traffic.link_transmissions),
                static_cast<unsigned long long>(traffic.bytes_transmitted));
    for (const auto& [type, count] : traffic.per_type) {
        std::printf("  %-14s %llu deliveries\n", type.c_str(),
                    static_cast<unsigned long long>(count));
    }

    std::printf("\nmobility: %llu steps, %.2f unit-lengths travelled\n",
                static_cast<unsigned long long>(mobility.steps()),
                mobility.distance_travelled());
    std::printf("%d/%zu discoveries satisfied\n", satisfied, requests.size());
    return satisfied >= static_cast<int>(requests.size()) - 1 ? 0 : 1;
}
