// A second application domain: pervasive e-health (the kind of ambient-
// intelligence scenario the Amigo project targeted). A hospital ward runs
// heterogeneous devices — a vital-signs monitor, an EHR repository, an
// alert dispatcher — described against a clinical ontology. A nurse's
// tablet issues one request with THREE required capabilities; discovery
// must satisfy all of them across different services, demonstrating
// multi-capability requests, QoS attributes and middleware heterogeneity.
#include <cstdio>

#include "core/discovery_engine.hpp"

namespace {

constexpr const char* kClinicalOntology = R"(
  <ontology uri="http://hospital.example/onto/clinical" version="1">
    <class name="Observation"/>
    <class name="VitalSign"><subClassOf name="Observation"/></class>
    <class name="HeartRate"><subClassOf name="VitalSign"/></class>
    <class name="BloodPressure"><subClassOf name="VitalSign"/></class>
    <class name="SpO2"><subClassOf name="VitalSign"/></class>
    <class name="Record"/>
    <class name="PatientRecord"><subClassOf name="Record"/></class>
    <class name="PatientId"/>
    <class name="Notification"/>
    <class name="UrgentNotification"><subClassOf name="Notification"/></class>
    <class name="ClinicalService"/>
    <class name="MonitoringService"><subClassOf name="ClinicalService"/></class>
    <class name="RecordService"><subClassOf name="ClinicalService"/></class>
    <class name="AlertService"><subClassOf name="ClinicalService"/></class>
    <class name="TelemetryService"><equivalentTo name="MonitoringService"/></class>
  </ontology>)";

const char* kWardServices[] = {
    // Bedside monitor: provides any vital sign for a patient. Advertised
    // under the TelemetryService alias — equivalence still matches requests
    // phrased as MonitoringService.
    R"(<service name="BedsideMonitor" provider="medtech" middleware="UPnP">
         <grounding protocol="SOAP" address="http://monitor-12.ward/vitals"/>
         <capability name="StreamVitals" kind="provided">
           <category concept="http://hospital.example/onto/clinical#TelemetryService"/>
           <input name="patient" concept="http://hospital.example/onto/clinical#PatientId"/>
           <output name="vitals" concept="http://hospital.example/onto/clinical#VitalSign"/>
         </capability>
         <qos name="sampleRateHz" value="4"/>
       </service>)",
    // EHR repository: fetches patient records.
    R"(<service name="EhrStore" provider="hospital-it" middleware="WS">
         <grounding protocol="SOAP" address="http://ehr.hospital/records"/>
         <capability name="FetchRecord" kind="provided">
           <category concept="http://hospital.example/onto/clinical#RecordService"/>
           <input name="patient" concept="http://hospital.example/onto/clinical#PatientId"/>
           <output name="record" concept="http://hospital.example/onto/clinical#PatientRecord"/>
         </capability>
         <qos name="latencyMs" value="80"/>
       </service>)",
    // Alert dispatcher: turns observations into notifications.
    R"(<service name="AlertDispatcher" provider="medtech" middleware="RMI">
         <grounding protocol="SOAP" address="http://alerts.ward/dispatch"/>
         <capability name="RaiseAlert" kind="provided">
           <category concept="http://hospital.example/onto/clinical#AlertService"/>
           <input name="obs" concept="http://hospital.example/onto/clinical#Observation"/>
           <output name="note" concept="http://hospital.example/onto/clinical#Notification"/>
         </capability>
       </service>)",
};

// The nurse's tablet: one request, three required capabilities, each
// phrased in vocabulary that nowhere equals the advertisements' —
// HeartRate vs VitalSign, MonitoringService vs TelemetryService,
// HeartRate observations into an Observation-typed alert input.
constexpr const char* kNurseRequest = R"(
  <request requester="nurse-tablet-3">
    <capability name="WatchHeartRate">
      <category concept="http://hospital.example/onto/clinical#MonitoringService"/>
      <input name="patient" concept="http://hospital.example/onto/clinical#PatientId"/>
      <output name="hr" concept="http://hospital.example/onto/clinical#HeartRate"/>
    </capability>
    <capability name="PullRecord">
      <category concept="http://hospital.example/onto/clinical#RecordService"/>
      <input name="patient" concept="http://hospital.example/onto/clinical#PatientId"/>
      <output name="record" concept="http://hospital.example/onto/clinical#PatientRecord"/>
    </capability>
    <capability name="GetAlerted">
      <category concept="http://hospital.example/onto/clinical#AlertService"/>
      <input name="obs" concept="http://hospital.example/onto/clinical#HeartRate"/>
      <output name="note" concept="http://hospital.example/onto/clinical#Notification"/>
    </capability>
  </request>)";

}  // namespace

int main() {
    sariadne::DiscoveryEngine engine;
    engine.register_ontology_xml(kClinicalOntology);
    for (const char* service : kWardServices) engine.publish(service);

    std::printf("=== smart hospital ward: %zu services cached ===\n\n",
                engine.directory().service_count());

    const auto results = engine.discover(kNurseRequest);
    const char* const names[] = {"WatchHeartRate", "PullRecord", "GetAlerted"};
    bool all = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("%-16s:", names[i]);
        if (results[i].empty()) {
            std::printf(" UNSATISFIED\n");
            all = false;
            continue;
        }
        for (const auto& hit : results[i]) {
            std::printf(" %s/%s (d=%d, %s)", hit.service_name.c_str(),
                        hit.capability_name.c_str(), hit.semantic_distance,
                        hit.grounding.address.c_str());
        }
        std::printf("\n");
    }

    std::printf("\nhighlights:\n");
    std::printf(" * WatchHeartRate matched StreamVitals although the request says\n"
                "   MonitoringService/HeartRate and the monitor says\n"
                "   TelemetryService/VitalSign — equivalence + subsumption.\n");
    std::printf(" * GetAlerted matched although the alert service accepts any\n"
                "   Observation, not specifically a HeartRate.\n");
    return all ? 0 : 1;
}
