// Peer-to-peer composition from required capabilities (§2.2): Amigo-S
// services declare not only what they PROVIDE but what they REQUIRE from
// other networked services. The planner resolves a whole dependency tree
// against the semantic directory.
//
// Scenario — an ambient slideshow on the living-room wall screen:
//   WallScreen       requires a photo stream and ambient music
//   PhotoFrameSvc    provides the photo stream, requires a photo archive
//   MusicBox         provides ambient music
//   HomeNas          provides the photo archive
// Planning wires: HomeNas → PhotoFrameSvc → WallScreen and
// MusicBox → WallScreen, in dependency order.
#include <cstdio>

#include "core/composition.hpp"
#include "core/discovery_engine.hpp"
#include "description/amigos_io.hpp"

namespace {

constexpr const char* kOntology = R"(
  <ontology uri="http://home.example/onto/ambient" version="1">
    <class name="Media"/>
    <class name="Photo"><subClassOf name="Media"/></class>
    <class name="Music"><subClassOf name="Media"/></class>
    <class name="AmbientMusic"><subClassOf name="Music"/></class>
    <class name="Archive"/>
    <class name="PhotoArchive"><subClassOf name="Archive"/></class>
    <class name="StreamHandle"/>
    <class name="AmbientService"/>
    <class name="DisplayService"><subClassOf name="AmbientService"/></class>
    <class name="AudioService"><subClassOf name="AmbientService"/></class>
    <class name="StorageService"><subClassOf name="AmbientService"/></class>
  </ontology>)";

const char* kNetworkedServices[] = {
    R"(<service name="PhotoFrameSvc" provider="frame-co">
         <grounding protocol="SOAP" address="http://frame.local/photos"/>
         <capability name="StreamPhotos" kind="provided">
           <category concept="http://home.example/onto/ambient#DisplayService"/>
           <output name="stream" concept="http://home.example/onto/ambient#StreamHandle"/>
         </capability>
         <!-- the archive is NOT a client-supplied input: the frame obtains
              it itself through its required capability below -->
         <capability name="NeedArchive" kind="required">
           <category concept="http://home.example/onto/ambient#StorageService"/>
           <output name="archive" concept="http://home.example/onto/ambient#PhotoArchive"/>
         </capability>
       </service>)",
    R"(<service name="MusicBox" provider="audio-co">
         <grounding protocol="UPnP" address="http://musicbox.local/play"/>
         <capability name="PlayAmbient" kind="provided">
           <category concept="http://home.example/onto/ambient#AudioService"/>
           <output name="music" concept="http://home.example/onto/ambient#AmbientMusic"/>
         </capability>
       </service>)",
    R"(<service name="HomeNas" provider="nas-co">
         <grounding protocol="SOAP" address="http://nas.local/archive"/>
         <capability name="ServeArchive" kind="provided">
           <category concept="http://home.example/onto/ambient#StorageService"/>
           <output name="archive" concept="http://home.example/onto/ambient#PhotoArchive"/>
         </capability>
       </service>)",
};

// The root: the wall screen's own description, with two requirements. Note
// the vocabulary gaps — it asks generically for Music, the MusicBox offers
// AmbientMusic.
constexpr const char* kWallScreen = R"(
  <service name="WallScreen" provider="screen-co">
    <grounding protocol="UPnP" address="http://wall.local/show"/>
    <capability name="ShowSlideshow" kind="provided">
      <category concept="http://home.example/onto/ambient#DisplayService"/>
      <output name="session" concept="http://home.example/onto/ambient#StreamHandle"/>
    </capability>
    <capability name="NeedPhotoStream" kind="required">
      <category concept="http://home.example/onto/ambient#DisplayService"/>
      <output name="stream" concept="http://home.example/onto/ambient#StreamHandle"/>
    </capability>
    <capability name="NeedMusic" kind="required">
      <category concept="http://home.example/onto/ambient#AudioService"/>
      <output name="music" concept="http://home.example/onto/ambient#AmbientMusic"/>
    </capability>
  </service>)";

}  // namespace

int main() {
    sariadne::DiscoveryEngine engine;
    engine.register_ontology_xml(kOntology);
    for (const char* service : kNetworkedServices) engine.publish(service);

    const auto root = sariadne::desc::parse_service(kWallScreen);
    sariadne::CompositionPlanner planner(engine.directory());
    const sariadne::CompositionPlan plan = planner.plan(root);

    std::printf("=== composition plan for WallScreen (%zu steps, %zu gaps) ===\n\n",
                plan.steps.size(), plan.gaps.size());
    int step_no = 1;
    for (const auto& step : plan.steps) {
        std::printf("%d. %-14s needs %-16s -> %-14s / %-13s (d=%d) at %s\n",
                    step_no++, step.consumer_service.c_str(),
                    step.required_capability.c_str(),
                    step.provider_service.c_str(),
                    step.provided_capability.c_str(), step.semantic_distance,
                    step.grounding.address.c_str());
    }
    for (const auto& gap : plan.gaps) {
        std::printf("!! %s needs %s: %s\n", gap.consumer_service.c_str(),
                    gap.required_capability.c_str(), gap.reason.c_str());
    }

    std::printf("\nexecuting front-to-back wires leaf services first: the NAS\n"
                "feeds the photo frame before the frame feeds the screen.\n");
    return plan.complete() ? 0 : 1;
}
